"""Tests for flow sets and the measurement harness."""

import pytest

from repro.core import ESwitch
from repro.packet import PacketBuilder
from repro.simcpu.platform import XEON_E5_2620
from repro.traffic import FlowSet, measure, measure_multicore, round_robin
from repro.traffic.flows import uniform_random
from repro.traffic.nfpa import DirectSwitch, auto_params
from repro.usecases import firewall, l2


class TestFlowSet:
    def test_build_deterministic(self):
        factory = lambda i, rng: PacketBuilder(in_port=i % 3).eth().build()
        a = FlowSet.build(10, factory, seed=1)
        b = FlowSet.build(10, factory, seed=1)
        assert all(bytes(a[i].data) == bytes(b[i].data) for i in range(10))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FlowSet([])

    def test_round_robin_cycles(self):
        flows = FlowSet([PacketBuilder(in_port=i).eth().build() for i in range(3)])
        ports = [p.in_port for p in round_robin(flows, 7)]
        assert ports == [0, 1, 2, 0, 1, 2, 0]

    def test_round_robin_yields_copies(self):
        flows = FlowSet([PacketBuilder().eth().build()])
        a, b = list(round_robin(flows, 2))
        a.data[0] = 0xFF
        assert b.data[0] != 0xFF

    def test_uniform_random_deterministic(self):
        flows = FlowSet([PacketBuilder(in_port=i).eth().build() for i in range(5)])
        a = [p.in_port for p in uniform_random(flows, 20, seed=3)]
        b = [p.in_port for p in uniform_random(flows, 20, seed=3)]
        assert a == b


class TestMeasure:
    def test_measurement_fields(self):
        p, macs = l2.build(10)
        m = measure(ESwitch.from_pipeline(p), l2.traffic(macs, 10),
                    n_packets=500, warmup=100)
        assert m.packets == 500
        assert m.forwarded == 500
        assert m.pps > 0
        assert m.cycles_per_packet > 100
        assert m.mpps == m.pps / 1e6

    def test_verdict_accounting(self):
        flows = FlowSet([
            PacketBuilder(in_port=firewall.EXTERNAL).eth()
            .ipv4(dst=firewall.SERVER_IP).tcp(dst_port=80).build(),
            PacketBuilder(in_port=firewall.EXTERNAL).eth()
            .ipv4(dst=firewall.SERVER_IP).tcp(dst_port=23).build(),
        ])
        m = measure(ESwitch.from_pipeline(firewall.build_single_stage()), flows,
                    n_packets=100, warmup=10)
        assert m.forwarded == 50 and m.dropped == 50

    def test_update_hook_invoked(self):
        p, macs = l2.build(4)
        calls = []
        measure(ESwitch.from_pipeline(p), l2.traffic(macs, 4), n_packets=50,
                warmup=0, update_hook=lambda i, meter: calls.append(i))
        assert len(calls) == 50

    def test_direct_switch_wrapper(self):
        m = measure(DirectSwitch(firewall.build_single_stage()),
                    FlowSet([PacketBuilder(in_port=firewall.INTERNAL)
                             .eth().ipv4().tcp().build()]),
                    n_packets=50, warmup=5)
        assert m.forwarded == 50

    def test_auto_params_monotone(self):
        n1, w1 = auto_params(10)
        n2, w2 = auto_params(50_000)
        assert n2 >= n1 and w2 >= w1
        assert w2 <= 40_000 and n2 <= 60_000


class TestMulticore:
    def test_aggregate_scales(self):
        # Use the Atom platform: no NIC cap, as in the paper's Fig. 19
        # ("ESWITCH proves too fast for this experiment" on the Xeon).
        from repro.simcpu.platform import ATOM_C2750

        p, macs = l2.build(16)
        flows = l2.traffic(macs, 64)

        def make():
            pp, _ = l2.build(16)
            return ESwitch.from_pipeline(pp)

        one = measure_multicore(make, flows, cores=1, n_packets=400, warmup=100,
                                platform=ATOM_C2750)
        four = measure_multicore(make, flows, cores=4, n_packets=400, warmup=100,
                                 platform=ATOM_C2750)
        assert 3.0 < four / one < 4.5

    def test_nic_cap_respected(self):
        p, macs = l2.build(4)
        flows = l2.traffic(macs, 16)

        def make():
            pp, _ = l2.build(4)
            return ESwitch.from_pipeline(pp)

        pps = measure_multicore(make, flows, cores=5, n_packets=200, warmup=50,
                                platform=XEON_E5_2620)
        assert pps <= XEON_E5_2620.nic_pps_limit

    def test_coherence_penalty_slows_shared_switch(self):
        from repro.simcpu.platform import ATOM_C2750

        p, macs = l2.build(16)
        flows = l2.traffic(macs, 64)

        def make():
            pp, _ = l2.build(16)
            return ESwitch.from_pipeline(pp)

        free = measure_multicore(make, flows, cores=4, n_packets=300, warmup=50,
                                 platform=ATOM_C2750)
        taxed = measure_multicore(make, flows, cores=4, n_packets=300, warmup=50,
                                  platform=ATOM_C2750,
                                  coherence_cycles_per_core=50.0)
        assert taxed < free

    def test_requires_positive_cores(self):
        p, macs = l2.build(4)
        with pytest.raises(ValueError):
            measure_multicore(lambda: ESwitch.from_pipeline(l2.build(4)[0]),
                              l2.traffic(macs, 4), cores=0)


class TestDirectSwitchAccounting:
    """The reference interpreter's meter accounting must be self-consistent
    (regression: process charged no per-packet atoms while process_burst
    credited the amortization share, so sub-reference bursts recorded
    net-negative cycle windows)."""

    @staticmethod
    def _forwarding_packets(n):
        return [
            PacketBuilder(in_port=firewall.INTERNAL).eth().ipv4().tcp().build()
            for _ in range(n)
        ]

    def test_reference_burst_equals_scalars(self):
        from repro.simcpu.costs import DEFAULT_COSTS
        from repro.simcpu.recorder import CycleMeter

        b = DEFAULT_COSTS.reference_burst
        scalar_meter = CycleMeter(XEON_E5_2620)
        switch = DirectSwitch(firewall.build_single_stage())
        for pkt in self._forwarding_packets(b):
            scalar_meter.begin_packet()
            verdict = switch.process(pkt, scalar_meter)
            scalar_meter.end_packet()
            assert verdict.forwarded

        burst_meter = CycleMeter(XEON_E5_2620)
        DirectSwitch(firewall.build_single_stage()).process_burst(
            self._forwarding_packets(b), burst_meter
        )
        assert burst_meter.total_cycles == pytest.approx(scalar_meter.total_cycles)
        assert burst_meter.total_cycles > 0

    def test_sub_reference_burst_windows_non_negative(self):
        from repro.simcpu.recorder import CycleMeter

        meter = CycleMeter(XEON_E5_2620)
        meter.keep_history = True
        DirectSwitch(firewall.build_single_stage()).process_burst(
            self._forwarding_packets(4), meter
        )
        history = meter.packet_history
        assert len(history) == 4
        assert all(window >= 0 for window in history)
        assert meter.total_cycles > 0

    def test_scalar_process_charges_io_atoms(self):
        from repro.simcpu.costs import DEFAULT_COSTS
        from repro.simcpu.recorder import CycleMeter

        meter = CycleMeter(XEON_E5_2620)
        switch = DirectSwitch(firewall.build_single_stage())
        verdict = switch.process(self._forwarding_packets(1)[0], meter)
        assert verdict.forwarded
        expected = DEFAULT_COSTS.pkt_in + DEFAULT_COSTS.pkt_out
        assert meter._packet_cycles == pytest.approx(expected)
