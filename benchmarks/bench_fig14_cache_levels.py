"""Fig. 14: fraction of packets forwarded at each OVS cache level.

Paper: "as the active flow set grows packet processing gradually shifts
from the very fast microflow cache to the slower megaflow cache and
finally to the vswitchd slow path."
"""

from figshared import FLOW_AXIS, fmt_flows, publish, render_table
from repro.ovs import OvsSwitch
from repro.simcpu.platform import XEON_E5_2620
from repro.traffic import measure
from repro.traffic.nfpa import auto_params
from repro.usecases import gateway

N_CE, USERS, PREFIXES = 10, 20, 10_000


def test_fig14_cache_hit_levels(benchmark):
    _p, fib = gateway.build(n_ce=N_CE, users_per_ce=USERS, n_prefixes=PREFIXES)
    rows = []
    fractions = []
    for n_flows in FLOW_AXIS:
        sw = OvsSwitch(gateway.build(n_ce=N_CE, users_per_ce=USERS,
                                     n_prefixes=PREFIXES)[0])
        flows = gateway.traffic(fib, n_flows, n_ce=N_CE, users_per_ce=USERS)
        n_packets, warmup = auto_params(n_flows)
        n_packets, warmup = min(n_packets, 30_000), min(warmup, 30_000)

        # Reset the hit counters right as the measured window starts so the
        # fractions describe steady state, not cache fill.
        def reset_at_start(i, _meter, sw=sw):
            if i == 0:
                sw.stats.reset()

        measure(sw, flows, n_packets=n_packets, warmup=warmup,
                platform=XEON_E5_2620, update_hook=reset_at_start)
        rates = sw.stats.rates()
        fractions.append((n_flows, rates))
        rows.append(
            (
                fmt_flows(n_flows),
                f"{rates['microflow']:.3f}",
                f"{rates['megaflow']:.3f}",
                f"{rates['vswitchd']:.3f}",
            )
        )
    publish(
        "fig14_cache_levels",
        render_table(
            "Fig. 14: fraction of packets per OVS datapath level",
            ("flows", "microflow", "megaflow", "vswitchd"),
            rows,
        ),
    )

    by_flows = dict(fractions)
    # Small flow sets live in the microflow cache...
    assert by_flows[1]["microflow"] > 0.95
    assert by_flows[100]["microflow"] > 0.9
    # ...mid-size sets spill into the megaflow cache...
    assert by_flows[10_000]["megaflow"] > by_flows[1]["megaflow"]
    assert by_flows[10_000]["microflow"] < 0.5
    # ...and huge sets fall through to the slow path.
    assert by_flows[100_000]["vswitchd"] > 0.9
    # The microflow fraction is monotonically non-increasing.
    micro = [r["microflow"] for _f, r in fractions]
    assert all(a >= b - 0.02 for a, b in zip(micro, micro[1:]))

    sw = OvsSwitch(gateway.build(n_ce=N_CE, users_per_ce=USERS,
                                 n_prefixes=PREFIXES)[0])
    flows = gateway.traffic(fib, 64, n_ce=N_CE, users_per_ce=USERS)
    counter = iter(range(10**9))
    benchmark(lambda: sw.process(flows[next(counter) % 64].copy()))
