"""Stateful update testing: a switch mutated by flow-mods must behave like
a switch compiled from scratch from the final pipeline.

This exercises every update path — incremental hash/LPM/linked-list edits,
direct-code rebuilds, template fallbacks and upgrades, decomposition-group
rebuilds — against the strongest possible oracle.
"""

import random

from hypothesis import given, settings, strategies as st

import strategies as sts

from repro.core import ESwitch
from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.instructions import ApplyActions
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.pipeline import Pipeline
from repro.ovs import OvsSwitch


def random_mod(rng: random.Random) -> FlowMod:
    fields = rng.sample(["in_port", "eth_dst", "ipv4_dst", "tcp_dst", "udp_dst",
                         "ip_proto"], rng.randrange(0, 3))
    spec = {f: rng.choice(sts.FIELD_DOMAINS[f]) for f in fields}
    if rng.random() < 0.25:
        return FlowMod(FlowModCommand.DELETE, 0, Match(**spec),
                       priority=rng.randrange(0, 8))
    return FlowMod(
        FlowModCommand.ADD, 0, Match(**spec), priority=rng.randrange(0, 8),
        instructions=(ApplyActions([Output(rng.randrange(1, 5))]),),
    )


def fresh_pipeline(entries) -> Pipeline:
    t = FlowTable(0)
    for e in entries:
        t.add(FlowEntry(e.match, priority=e.priority, instructions=e.instructions))
    return Pipeline([t])


class TestUpdateEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_updated_switch_equals_recompiled_switch(self, seed):
        rng = random.Random(seed)
        pipeline = Pipeline([FlowTable(0)])
        sw = ESwitch.from_pipeline(pipeline)
        for _ in range(rng.randrange(3, 25)):
            sw.apply_flow_mod(random_mod(rng))
            if rng.random() < 0.3:
                # Interleave traffic so lazy rebuilds actually flush.
                sw.process(sts.random_packet(rng))

        oracle = ESwitch.from_pipeline(fresh_pipeline(pipeline.table(0).entries))
        for _ in range(30):
            pkt = sts.random_packet(rng)
            assert (sw.process(pkt.copy()).summary()
                    == oracle.process(pkt.copy()).summary()), seed

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_ovs_and_eswitch_agree_through_updates(self, seed):
        rng = random.Random(seed)
        es = ESwitch.from_pipeline(Pipeline([FlowTable(0)]))
        ovs = OvsSwitch(Pipeline([FlowTable(0)]))
        for _ in range(rng.randrange(3, 15)):
            mod = random_mod(rng)
            es.apply_flow_mod(mod)
            ovs.apply_flow_mod(mod)
            for _ in range(3):
                pkt = sts.random_packet(rng)
                assert (es.process(pkt.copy()).summary()
                        == ovs.process(pkt.copy()).summary()), seed
