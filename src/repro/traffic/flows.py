"""Flow sets: deterministic collections of template packets.

A *flow* here is one fixed header combination; the *active flow set* of the
paper's x-axes is simply how many distinct flows a trace cycles through.
Flows are materialized once as template packets; the replay engine sends
copies, because datapath actions (NAT rewrites, VLAN ops, TTL decrement)
mutate packet bytes.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, Sequence

from repro.packet.packet import Packet


class FlowSet:
    """An ordered set of template packets, one per flow."""

    def __init__(self, packets: Sequence[Packet], name: str = ""):
        if not packets:
            raise ValueError("a flow set needs at least one flow")
        self._packets = list(packets)
        self.name = name

    @classmethod
    def build(cls, n_flows: int, factory: Callable[[int, random.Random], Packet],
              seed: int = 0, name: str = "") -> "FlowSet":
        """Materialize ``n_flows`` template packets from a factory."""
        rng = random.Random(seed)
        return cls([factory(i, rng) for i in range(n_flows)], name=name)

    def __len__(self) -> int:
        return len(self._packets)

    def __getitem__(self, index: int) -> Packet:
        return self._packets[index]

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._packets)


def round_robin(flows: FlowSet, n_packets: int) -> Iterator[Packet]:
    """Cycle through the flow set, yielding fresh copies.

    Round-robin arrival is the *worst case* for flow caching — every flow's
    packets are maximally spaced in time — matching how the paper's traces
    strip temporal locality as the active flow set grows.
    """
    n = len(flows)
    for i in range(n_packets):
        yield flows[i % n].copy()


def uniform_random(flows: FlowSet, n_packets: int, seed: int = 1) -> Iterator[Packet]:
    """Uniform random flow arrivals (an alternative mix for tests)."""
    rng = random.Random(seed)
    n = len(flows)
    for _ in range(n_packets):
        yield flows[rng.randrange(n)].copy()
