"""Additional decomposition properties: dedup equivalence, determinism."""

from hypothesis import given, settings

import strategies as sts

from repro.core.decompose import decompose_table
from repro.openflow.pipeline import Pipeline


class TestDedupEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(sts.flow_tables(max_entries=8), sts.packets(), sts.packets())
    def test_dedup_preserves_semantics(self, table, p1, p2):
        """Sharing identical subtables must never change behavior."""
        plain = decompose_table(table, 100, dedup=False)
        if plain is None:
            return
        shared = decompose_table(table, 100, dedup=True)
        assert shared is not None
        assert len(shared) <= len(plain)
        a, b = Pipeline(plain), Pipeline(shared)
        for pkt in (p1, p2):
            assert (a.process(pkt.copy()).summary()
                    == b.process(pkt.copy()).summary())

    @settings(max_examples=30, deadline=None)
    @given(sts.flow_tables(max_entries=8))
    def test_deterministic(self, table):
        """Same input, same decomposition (no hidden randomness)."""
        first = decompose_table(table, 100)
        second = decompose_table(table, 100)
        if first is None:
            assert second is None
            return
        assert [t.table_id for t in first] == [t.table_id for t in second]
        assert [len(t) for t in first] == [len(t) for t in second]

    @settings(max_examples=30, deadline=None)
    @given(sts.flow_tables(max_entries=8))
    def test_leaves_are_single_column(self, table):
        tables = decompose_table(table, 100)
        if tables is None:
            return
        for t in tables:
            assert len(t.matched_fields()) <= 1
