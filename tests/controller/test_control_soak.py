"""Control-plane fault soak (ISSUE 5 satellites).

Long-haul disconnect/reconnect under lossy-channel traffic: the datapath
never raises, fail-standalone forwarding survives the outage, the
bounded punt queue holds under a cache-overflow-style packet-in flood
(the attack shape of tests/integration/test_attack.py), and the
reconnected session converges to the same pipeline a never-disconnected
run reaches. Plus the controller-hardening satellite: garbage packet-ins
are counted, never raised.
"""

import random

from repro.controller import ControllerSession, FailMode, LossyChannel
from repro.controller.gateway_controller import GatewayController
from repro.controller.learning_switch import LearningSwitch, build_pipeline
from repro.core import ESwitch
from repro.openflow.messages import FlowModReply, PacketIn
from repro.packet import PacketBuilder
from repro.packet.packet import Packet
from repro.usecases import gateway


def l2_pkt(src, dst, in_port):
    return (PacketBuilder(in_port=in_port).eth(src=src, dst=dst)
            .ipv4().udp().build())


def attack_packet(rng):
    """A high-entropy scan packet: fresh source MAC every time, so every
    one punts — the punt-path flood of Sections 2.3/4.3."""
    return l2_pkt(
        src=0x02_0000_000000 | rng.randrange(1 << 32),
        dst=rng.randrange(1 << 48) | 0x02_0000_000000,
        in_port=rng.randrange(1, 5),
    )


def make(fail_mode=FailMode.STANDALONE, loss=0.0, seed=0, **kw):
    switch = ESwitch.from_pipeline(build_pipeline())
    session = ControllerSession(
        switch, channel=LossyChannel(loss=loss, seed=seed),
        fail_mode=fail_mode, **kw,
    )
    app = LearningSwitch(session)
    session.controller = app
    return session, app


def station_traffic(n_stations, n_packets, seed, first=0):
    rng = random.Random(seed)
    macs = [0x02_0000_0000_00 + i for i in range(n_stations)]
    for _ in range(n_packets):
        src = rng.randrange(first, n_stations)
        dst = rng.randrange(n_stations)
        yield l2_pkt(macs[src], macs[dst], in_port=1 + src % 8)


def table_image(switch):
    return [
        (t.table_id, sorted((repr(e.match), e.priority) for e in t.entries))
        for t in switch.pipeline
    ]


class TestDisconnectReconnectSoak:
    def test_outage_soak_converges_to_never_disconnected_pipeline(self):
        knobs = dict(echo_interval_s=0.1, liveness_timeout_s=0.5)
        faulty, faulty_app = make(loss=0.02, seed=11, **knobs)
        steady, steady_app = make(loss=0.0, seed=11, **knobs)
        # Stations 16..23 first appear *during* the outage window, so
        # their punts are the ones the fail mode must suppress; the tail
        # re-sees everybody so the resync can converge.
        packets = (
            list(station_traffic(16, 150, seed=5))
            + list(station_traffic(24, 150, seed=6, first=16))
            + list(station_traffic(24, 300, seed=7))
        )

        for i, pkt in enumerate(packets):
            steady.process(pkt.copy())
            steady.advance(0.01)
            if i == 150:
                faulty.disconnect()
            if i == 300:
                faulty.reconnect()
            # The faulty run must never raise, outage or not.
            faulty.process(pkt.copy())
            faulty.advance(0.01)

        health = faulty.health()
        assert health.outages == 1
        assert health.resyncs == 1
        assert health.time_down_s > 0
        assert health.punts_suppressed > 0
        assert faulty.connected

        # Drain the residual learning tail: with every station re-seen
        # after the resync, both switches hold the same rules.
        for pkt in station_traffic(24, 200, seed=6):
            steady.process(pkt.copy())
            faulty.process(pkt.copy())
        assert faulty_app.mac_table == steady_app.mac_table
        assert table_image(faulty.switch) == table_image(steady.switch)
        assert faulty.switch.table_kinds() == steady.switch.table_kinds()

    def test_forwarding_survives_the_outage(self):
        session, app = make(FailMode.STANDALONE)
        a, b = 0x02_0000_0000_0A, 0x02_0000_0000_0B
        session.process(l2_pkt(a, b, in_port=1))
        session.process(l2_pkt(b, a, in_port=2))
        session.disconnect()
        session.advance(10.0)
        assert not session.connected
        for _ in range(200):
            assert session.process(l2_pkt(a, b, in_port=1)).output_ports == [2]
            assert session.process(l2_pkt(b, a, in_port=2)).output_ports == [1]
        assert session.switch.health().fused_active


class TestPuntFloodBounds:
    def test_attack_flood_cannot_grow_the_queue(self):
        # A burst of unique-source scan packets punts on every packet;
        # punts queue during the burst and pump only between packets, so
        # the drop-tail bound is what stands between the flood and an
        # unbounded queue.
        session, app = make(max_punt_queue=32)
        rng = random.Random(4)
        flood = [attack_packet(rng) for _ in range(200)]
        session.switch.process_burst(flood)
        assert len(session.punt_queue) == 32  # full, not overflowing
        assert session.punt_queue_drops == 200 - 32
        session.pump()
        assert not session.punt_queue
        assert session.punts_delivered == 32
        assert app.packet_ins == 32  # the controller saw the bound, not the flood

    def test_flood_during_outage_is_suppressed_entirely(self):
        session, app = make(FailMode.SECURE, max_punt_queue=32)
        session.disconnect()
        session.advance(10.0)
        rng = random.Random(7)
        for _ in range(100):
            session.process(attack_packet(rng))
        assert session.punts_suppressed == 100
        assert session.secure_drops == 100
        assert not session.punt_queue
        assert app.packet_ins == 0


def garbage_packet_ins(seed, n=120):
    rng = random.Random(seed)
    outs = []
    for _ in range(n):
        raw = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 40)))
        outs.append(PacketIn(pkt=Packet(raw, in_port=rng.choice([1, 2, None])),
                             table_id=0))
    return outs


class TestControllerHardening:
    """Satellite 2: handle() must drop-and-count garbage, never raise."""

    def test_learning_switch_survives_garbage(self):
        switch = ESwitch.from_pipeline(build_pipeline())
        app = LearningSwitch(switch)
        for pin in garbage_packet_ins(seed=3):
            app.handle(pin)  # must not raise
        # Runt frames are counted; frames long enough to carry an
        # Ethernet header learn like any real packet would — the contract
        # is "never raise", not "never learn".
        assert app.malformed > 0
        assert len(app.mac_table) == app.learned
        # A real punt afterwards still works.
        before = app.learned
        app.handle(PacketIn(pkt=l2_pkt(0x02_0000_00AA, 0xBB, in_port=2),
                            table_id=0))
        assert app.learned == before + 1

    def test_learning_switch_truncated_frames(self):
        switch = ESwitch.from_pipeline(build_pipeline())
        app = LearningSwitch(switch)
        full = l2_pkt(0xAA, 0xBB, in_port=1)
        for cut in (0, 3, 7, 11):
            app.handle(PacketIn(pkt=Packet(bytes(full.data[:cut]),
                                           in_port=1), table_id=0))
        assert app.malformed == 4
        assert app.mac_table == {}

    def test_gateway_controller_survives_garbage(self):
        pipeline, _fib = gateway.build(n_ce=2, users_per_ce=2, n_prefixes=10)
        ctrl = GatewayController(ESwitch.from_pipeline(pipeline),
                                 n_ce=2, users_per_ce=2)
        for pin in garbage_packet_ins(seed=9):
            ctrl.handle(pin)
        # Every garbage punt was either counted malformed (unparseable)
        # or rejected (no subscriber shape) — and none was admitted.
        assert ctrl.malformed + ctrl.rejected == ctrl.packet_ins == 120
        assert ctrl.admitted == set()
        assert ctrl.install_failures == 0

    def test_rejected_install_leaves_binding_unlearned(self):
        class RejectingSwitch:
            def __init__(self):
                self.batches = 0

            def submit_flow_mods(self, mods):
                self.batches += 1
                return FlowModReply(accepted=False)

        sw = RejectingSwitch()
        app = LearningSwitch(sw)
        pin = PacketIn(pkt=l2_pkt(0xAA, 0xBB, in_port=1), table_id=0)
        app.handle(pin)
        assert app.install_failures == 1
        assert app.mac_table == {}  # stays unlearned: the next punt retries
        app.handle(pin)
        assert sw.batches == 2  # it really did retry
