"""The platform reference benchmark: DPDK ``l2fwd`` port forwarding.

Section 4.2: "The maximum single-core packet rate attainable with DPDK on
this platform is 15.7 million packets per second (Mpps), measured in
port-forward mode with the DPDK l2fwd tool; we shall set this metric as a
benchmark for the measurements."

The cost model reproduces that ceiling: RX (40) + TX (40) + framework
overhead ≈ 127.4 cycles per packet at 2.0 GHz ⇒ 15.7 Mpps.
"""

from __future__ import annotations

from repro.packet.packet import Packet
from repro.simcpu.costs import CostBook, DEFAULT_COSTS
from repro.simcpu.platform import Platform, XEON_E5_2620
from repro.simcpu.recorder import Meter, NULL_METER

#: Per-packet cycles of the l2fwd loop under the default cost book.
L2FWD_CYCLES_PER_PKT = (
    DEFAULT_COSTS.pkt_in + DEFAULT_COSTS.pkt_out + DEFAULT_COSTS.l2fwd_overhead
)


def l2fwd_rate_pps(
    platform: Platform = XEON_E5_2620, costs: CostBook = DEFAULT_COSTS
) -> float:
    """The platform's port-forward packet-rate ceiling."""
    cycles = (costs.pkt_in + costs.pkt_out + costs.l2fwd_overhead)
    return platform.pps(cycles * platform.cycle_factor)


def l2fwd(pkt: Packet, meter: Meter = NULL_METER, costs: CostBook = DEFAULT_COSTS) -> int:
    """Forward a packet to the paired port (0<->1, 2<->3, ...), DPDK-style."""
    meter.charge(costs.pkt_in + costs.l2fwd_overhead)
    out_port = pkt.in_port ^ 1
    meter.charge(costs.pkt_out)
    return out_port
