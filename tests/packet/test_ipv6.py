"""Tests for IPv6 parsing, fields, and matching."""

import ipaddress

import pytest

from repro.openflow.fields import field_by_name
from repro.openflow.match import Match
from repro.packet import PacketBuilder, headers as hdr
from repro.packet.packet import Packet
from repro.packet.parser import (
    PROTO_ICMP6,
    PROTO_IPV6,
    PROTO_TCP,
    PROTO_UDP,
    parse,
)

V6_SRC = int(ipaddress.IPv6Address("2001:db8::1"))
V6_DST = int(ipaddress.IPv6Address("2001:db8::2"))


def v6_tcp(dport=80, **kw):
    return PacketBuilder().eth().ipv6(**kw).tcp(dst_port=dport).build()


class TestHeader:
    def test_roundtrip(self):
        ip6 = hdr.IPv6(src=V6_SRC, dst=V6_DST, next_header=6, hop_limit=63,
                       traffic_class=0x2C, flow_label=0x12345, payload_length=20)
        parsed, offset = hdr.IPv6.unpack(ip6.pack(), 0)
        assert offset == 40
        assert parsed == ip6

    def test_rejects_v4(self):
        data = bytearray(hdr.IPv6().pack())
        data[0] = 0x45
        with pytest.raises(hdr.HeaderError):
            hdr.IPv6.unpack(bytes(data), 0)

    def test_truncated(self):
        with pytest.raises(hdr.HeaderError):
            hdr.IPv6.unpack(b"\x60" + b"\x00" * 20, 0)

    def test_icmpv6_roundtrip(self):
        parsed, _ = hdr.ICMPv6.unpack(hdr.ICMPv6(type=135, code=0).pack(), 0)
        assert parsed.type == 135


class TestParsing:
    def test_tcp_over_v6(self):
        view = parse(v6_tcp())
        assert view.has(PROTO_IPV6) and view.has(PROTO_TCP)
        assert view.l3 == 14 and view.l4 == 54
        assert view.l4_proto == hdr.IP_PROTO_TCP

    def test_udp_over_v6(self):
        view = parse(PacketBuilder().eth().ipv6().udp(dst_port=53).build())
        assert view.has(PROTO_UDP)

    def test_icmpv6(self):
        view = parse(PacketBuilder().eth().ipv6().icmpv6(type=135).build())
        assert view.has(PROTO_ICMP6)
        assert view.l4_proto == hdr.IP_PROTO_ICMPV6

    def test_vlan_plus_v6(self):
        view = parse(PacketBuilder().eth().vlan(vid=7).ipv6().tcp().build())
        assert view.has(PROTO_IPV6) and view.has(PROTO_TCP)
        assert view.l3 == 18

    def test_extension_header_chain(self):
        # eth + v6(next=hop-by-hop) + hbh(next=tcp, len 0 -> 8 bytes) + tcp
        ip6 = hdr.IPv6(src=V6_SRC, dst=V6_DST, next_header=0, payload_length=28)
        hbh = bytes([hdr.IP_PROTO_TCP, 0]) + b"\x00" * 6
        raw = (hdr.Ethernet(ethertype=hdr.ETH_TYPE_IPV6).pack() + ip6.pack()
               + hbh + hdr.TCP(dst_port=443).pack())
        view = parse(Packet(raw))
        assert view.has(PROTO_TCP)
        assert view.l4 == 14 + 40 + 8
        assert view.l4_proto == hdr.IP_PROTO_TCP
        assert field_by_name("tcp_dst").extract(view) == 443

    def test_v6_fragment_has_no_l4(self):
        ip6 = hdr.IPv6(src=V6_SRC, dst=V6_DST, next_header=44, payload_length=28)
        frag = bytes([hdr.IP_PROTO_TCP, 0, 0x01, 0x00, 0, 0, 0, 1])  # offset != 0
        raw = (hdr.Ethernet(ethertype=hdr.ETH_TYPE_IPV6).pack() + ip6.pack()
               + frag + hdr.TCP().pack())
        view = parse(Packet(raw))
        assert view.has(PROTO_IPV6) and not view.has(PROTO_TCP)
        assert view.l4 == -1

    def test_truncated_extension_chain(self):
        ip6 = hdr.IPv6(next_header=0, payload_length=4)
        raw = hdr.Ethernet(ethertype=hdr.ETH_TYPE_IPV6).pack() + ip6.pack() + b"\x06"
        view = parse(Packet(raw, pad_to=0) if False else Packet(raw))
        assert view.has(PROTO_IPV6)
        assert not view.has(PROTO_TCP)


class TestFields:
    def test_v6_addresses(self):
        view = parse(v6_tcp(src="2001:db8::aa", dst="2001:db8::bb"))
        assert field_by_name("ipv6_src").extract(view) == int(
            ipaddress.IPv6Address("2001:db8::aa")
        )
        assert field_by_name("ipv6_dst").extract(view) == int(
            ipaddress.IPv6Address("2001:db8::bb")
        )
        assert field_by_name("ipv4_dst").extract(view) is None

    def test_flow_label_and_tc(self):
        view = parse(v6_tcp(traffic_class=0xAD, flow_label=0x9BEEF))
        assert field_by_name("ipv6_flabel").extract(view) == 0x9BEEF
        assert field_by_name("ip_dscp").extract(view) == 0xAD >> 2
        assert field_by_name("ip_ecn").extract(view) == 0xAD & 3

    def test_ip_proto_dual_family(self):
        v6 = parse(v6_tcp())
        v4 = parse(PacketBuilder().eth().ipv4().udp().build())
        assert field_by_name("ip_proto").extract(v6) == 6
        assert field_by_name("ip_proto").extract(v4) == 17

    def test_l4_ports_over_v6(self):
        view = parse(PacketBuilder().eth().ipv6().tcp(src_port=1234,
                                                      dst_port=80).build())
        assert field_by_name("tcp_src").extract(view) == 1234
        assert field_by_name("tcp_dst").extract(view) == 80

    def test_icmpv6_fields(self):
        view = parse(PacketBuilder().eth().ipv6().icmpv6(type=136, code=1).build())
        assert field_by_name("icmpv6_type").extract(view) == 136
        assert field_by_name("icmpv6_code").extract(view) == 1
        assert field_by_name("icmpv4_type").extract(view) is None

    def test_v6_writers(self):
        pkt = v6_tcp()
        view = parse(pkt)
        new = int(ipaddress.IPv6Address("2001:db8::ff"))
        field_by_name("ipv6_dst").store(view, new)
        assert field_by_name("ipv6_dst").extract(view) == new
        field_by_name("ip_dscp").store(view, 21)
        assert field_by_name("ip_dscp").extract(view) == 21
        field_by_name("ip_ecn").store(view, 2)
        assert field_by_name("ip_ecn").extract(view) == 2
        assert field_by_name("ip_dscp").extract(view) == 21  # undisturbed


class TestMatching:
    def test_exact_and_masked_v6(self):
        m_exact = Match(ipv6_dst=V6_DST)
        m_prefix = Match(ipv6_dst=(V6_DST, ((1 << 64) - 1) << 64))  # /64
        view = parse(v6_tcp())
        assert m_exact.matches(view)
        assert m_prefix.matches(view)
        other = parse(v6_tcp(dst="2001:db9::2"))
        assert not m_exact.matches(other)
        assert not m_prefix.matches(other)

    def test_v4_rule_never_matches_v6(self):
        assert not Match(ipv4_dst="10.0.0.0/8").matches(parse(v6_tcp()))

    def test_ip_proto_matches_both_families(self):
        m = Match(ip_proto=6)
        assert m.matches(parse(v6_tcp()))
        assert m.matches(parse(PacketBuilder().eth().ipv4().tcp().build()))
        assert not m.matches(parse(PacketBuilder().eth().ipv6().udp().build()))
