"""Template specialization: OpenFlow tables → compiled Python fast paths.

This is the reproduction's analogue of the paper's template-based machine
code generation (Section 3.3). Where the prototype patches flow keys into
pre-compiled x86 object fragments, we patch them as **literal constants
into Python source** assembled from per-template emitters, then
``compile()`` each table to a code object. Like the paper's choice of
compiling keys into the instruction stream, the keys live in the code, not
in looked-up data structures (except where the template *is* a data
structure: the compound hash and the LPM).

Every generated table function has the signature::

    def _match(data, pkt, l3, l4, proto, etype, nxt, m) -> Outcome

with ``data`` the raw packet bytes, ``l3``/``l4`` the header offsets and
``proto`` the protocol bitmask produced by the parser templates (the
paper's r12–r15 registers), ``etype`` the effective ethertype, and ``m``
the cycle meter. Protocol-prerequisite guards compile to bitmask tests —
the Python spelling of ``bt r15d, IP`` — and always run before any header
byte is dereferenced.

Cost atoms are baked into the emitted source as literals, so the generated
code *is* the performance model of its table (Section 4.4).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

from repro.core.analysis import (
    CompileConfig,
    DEFAULT_CONFIG,
    TemplateKind,
    port_map,
    port_runs,
    select_template,
    split_catch_all,
)
from repro.core.outcome import Outcome, miss_outcome, outcome_of
from repro.dpdk.hash import CollisionFreeHash
from repro.dpdk.lpm import Dir24_8Lpm
from repro.openflow.fields import field_by_name
from repro.openflow.flow_table import FlowTable
from repro.openflow.match import Match
from repro.simcpu.costs import CostBook, DEFAULT_COSTS


class CompileError(Exception):
    """Raised when a table cannot be compiled with the requested template."""


@dataclass
class CompiledTable:
    """One table's compiled artifact plus its update hooks."""

    table_id: int
    kind: TemplateKind
    fn: object  # the generated callable
    source: str
    namespace: dict
    miss: Outcome
    #: hash template: the backing store and its key layout.
    hash_store: "CollisionFreeHash | None" = None
    hash_fields: tuple[str, ...] = ()
    hash_masks: tuple[int, ...] = ()
    #: LPM template: the DIR-24-8 table, its field, and the outcome list.
    lpm_store: "Dir24_8Lpm | None" = None
    lpm_field: str = ""
    #: recycled slots of the LPM outcome list (freed by incremental DELETE).
    lpm_free: list = field(default_factory=list)
    #: linked list template: the mutable entry list and matcher registry.
    ll_entries: "list | None" = None
    ll_matchers: dict = field(default_factory=dict)
    #: how many flow entries are compiled in (for stats/inspection).
    entry_count: int = 0
    #: the source-budget fallback fired: keys live in closure arrays, not
    #: source text. Data-driven bodies return from inside a loop and must
    #: be linked by closure call, never textually inlined (see fuse.py).
    data_driven: bool = False

    def footprint(self) -> dict:
        """Estimated resident bytes of this compiled table.

        Backing stores (hash, LPM) report exactly; generated source and
        entry/outcome lists are estimated (~56 bytes per list slot plus
        ~120 bytes per Outcome). This is the per-rung memory telemetry of
        the million-flow bench — relative magnitudes matter, not malloc
        truth.
        """
        detail: dict = {}
        total = len(self.source)
        if self.hash_store is not None:
            detail = self.hash_store.footprint()
            total += detail["bytes"]
        elif self.lpm_store is not None:
            detail = self.lpm_store.footprint()
            total += detail["bytes"]
            total += len(self.namespace.get("_OUT", ())) * (56 + 120)
        elif self.ll_entries is not None:
            total += len(self.ll_entries) * (56 + 120 + 64)
        elif self.data_driven:
            total += len(self.namespace.get("_ENTRIES", ())) * (56 + 120 + 64)
        else:
            # Direct/range: outcomes live as namespace constants.
            total += sum(
                120 for k in self.namespace if k.startswith("_O")
            ) + len(self.namespace.get("_OUTS", ())) * (56 + 120)
        return {
            "table_id": self.table_id,
            "kind": self.kind.value,
            "entries": self.entry_count,
            "source_bytes": len(self.source),
            "data_driven": self.data_driven,
            "bytes": total,
            **{k: v for k, v in detail.items() if k not in ("kind", "bytes")},
        }


# -- match-condition expression builders ----------------------------------------


def _field_expr(name: str) -> str:
    fdef = field_by_name(name)
    if fdef.expr is None:
        raise CompileError(
            f"field {name!r} has no fast-path expression (unsupported header)"
        )
    return fdef.expr


def _guards(match: Match) -> list[str]:
    """Protocol-presence guard expressions (the ``bt r15d, IP`` analogue).

    Each constrained field contributes an any-of bitmask test; guards
    always run before the field's bytes are dereferenced.
    """
    masks = sorted(
        {
            field_by_name(name).proto_required
            for name in match.fields
            if field_by_name(name).proto_required
        }
    )
    return [f"proto & {g:#x}" for g in masks]


def _conditions(match: Match) -> tuple[list[str], list[str]]:
    """(protocol guard expressions, per-field comparison expressions)."""
    conds = []
    for name, (value, mask) in match.items():
        fdef = field_by_name(name)
        expr = _field_expr(name)
        if mask == fdef.max_value:
            conds.append(f"({expr}) == {value:#x}")
        else:
            conds.append(f"(({expr}) & {mask:#x}) == {value:#x}")
    return _guards(match), conds


def _key_exprs(fields: tuple[str, ...], masks: tuple[int, ...]) -> str:
    """The compound-hash key expression: fields run together and masked."""
    parts = []
    for name, mask in zip(fields, masks):
        fdef = field_by_name(name)
        expr = _field_expr(name)
        if mask == fdef.max_value:
            parts.append(f"({expr})")
        else:
            parts.append(f"(({expr}) & {mask:#x})")
    if len(parts) == 1:
        return parts[0]
    return "(" + ", ".join(parts) + ")"


def _compile(source: str, namespace: dict, table_id: int, kind: TemplateKind):
    code = compile(source, f"<eswitch:table{table_id}:{kind.value}>", "exec")
    exec(code, namespace)
    return namespace["_match"]


# -- template emitters -------------------------------------------------------------


def compile_direct(
    table: FlowTable,
    config: CompileConfig = DEFAULT_CONFIG,
    costs: CostBook = DEFAULT_COSTS,
) -> CompiledTable:
    """The direct code template: straight-line compare-and-jump code.

    A faithful transcription of the paper's example in Section 3.1: each
    flow entry becomes a protocol-bitmask guard followed by inlined matcher
    templates with the keys patched in, ending in a jump to its outcome;
    fall-through is the next entry ("ADDR_NEXT_FLOW").

    Tables whose generated source would exceed ``config.source_budget``
    compile to the *data-driven* variant instead
    (:func:`_compile_direct_data`): same guards, matchers, and cost atoms
    — bit-identical verdicts and modeled cycles — with the keys held in a
    closure array rather than patched into a multi-megabyte source
    string, so ``compile()`` stays bounded at million-entry tables.
    """
    budget = config.source_budget
    # ~24 chars is a hard floor per emitted entry; skip generating source
    # that is certain to blow the budget (the point of having one).
    if budget is not None and len(table.entries) * 24 > budget:
        return _compile_direct_data(table, config, costs)
    namespace: dict = {"_MISS": miss_outcome(table)}
    lines = [
        "def _match(data, pkt, l3, l4, proto, etype, nxt, m):",
        f"    m.charge({costs.direct_base!r})",
    ]
    total = sum(len(line) + 1 for line in lines)
    for i, entry in enumerate(table.entries):
        namespace[f"_O{i}"] = outcome_of(entry)
        guards, conds = _conditions(entry.match)
        lines.append(f"    m.charge({costs.direct_per_entry!r})  # FLOW_{i + 1}")
        if not config.keys_in_code:
            # Ablation: keys fetched from a key table in data memory.
            lines.append(f"    m.touch(('es_keys', {table.table_id}, {i // 4}))")
        checks = guards + conds
        if checks:
            lines.append(f"    if {' and '.join(checks)}:")
            lines.append(f"        return _O{i}")
        else:
            lines.append(f"    return _O{i}")
        total += sum(len(line) + 1 for line in lines[-3:])
        if budget is not None and total > budget:
            return _compile_direct_data(table, config, costs)
    lines.append("    return _MISS")
    source = "\n".join(lines) + "\n"
    fn = _compile(source, namespace, table.table_id, TemplateKind.DIRECT)
    return CompiledTable(
        table_id=table.table_id,
        kind=TemplateKind.DIRECT,
        fn=fn,
        source=source,
        namespace=namespace,
        miss=namespace["_MISS"],
        entry_count=len(table),
    )


def _compile_direct_data(
    table: FlowTable,
    config: CompileConfig = DEFAULT_CONFIG,
    costs: CostBook = DEFAULT_COSTS,
) -> CompiledTable:
    """The data-driven direct variant: the source-budget fallback rung.

    Entry order, guard evaluation, charge atoms, and (in the
    ``keys_in_code=False`` ablation) key-table touches mirror the in-code
    template line for line, so modeled cycles are bit-identical — the
    fallback is a *planned degradation* of code size, not of semantics or
    of the performance model. The per-entry matchers are the same shared
    generated functions the linked-list template uses; what changes is
    only where the keys live (closure array vs instruction stream).
    """
    namespace: dict = {"_MISS": miss_outcome(table)}
    matchers: dict[tuple, object] = {}
    entries: list[tuple[tuple, object, tuple, Outcome]] = []
    for entry in table.entries:
        sig = tuple((name, mask) for name, (_v, mask) in entry.match.items())
        fn = matchers.get(sig)
        if fn is None:
            fn = _build_sig_matcher(sig, len(matchers))
            matchers[sig] = fn
        values = tuple(v for _name, (v, _m) in entry.match.items())
        entries.append((_guard_masks(entry.match), fn, values, outcome_of(entry)))
    namespace["_ENTRIES"] = entries
    touch = (
        []
        if config.keys_in_code
        else [f"        m.touch(('es_keys', {table.table_id}, _i >> 2))"]
    )
    lines = (
        [
            "def _match(data, pkt, l3, l4, proto, etype, nxt, m):",
            f"    m.charge({costs.direct_base!r})",
            "    for _i, (_req, _fn, _vals, _out) in enumerate(_ENTRIES):",
            f"        m.charge({costs.direct_per_entry!r})",
        ]
        + touch
        + [
            "        if all(proto & _g for _g in _req) and _fn(data, pkt, l3, l4, proto, etype, nxt, _vals):",
            "            return _out",
            "    return _MISS",
        ]
    )
    source = "\n".join(lines) + "\n"
    fn = _compile(source, namespace, table.table_id, TemplateKind.DIRECT)
    return CompiledTable(
        table_id=table.table_id,
        kind=TemplateKind.DIRECT,
        fn=fn,
        source=source,
        namespace=namespace,
        miss=namespace["_MISS"],
        entry_count=len(table),
        data_driven=True,
    )


def compile_hash(
    table: FlowTable,
    config: CompileConfig = DEFAULT_CONFIG,
    costs: CostBook = DEFAULT_COSTS,
) -> CompiledTable:
    """The compound hash template: global mask + collision-free hash."""
    rules, catch_all = split_catch_all(table.entries)
    if not rules:
        raise CompileError("hash template needs at least one keyed entry")
    first = rules[0].match
    fields = first.fields
    masks = tuple(first.mask_of(name) for name in fields)

    items: dict = {}
    for entry in rules:
        if entry.match.fields != fields or tuple(
            entry.match.mask_of(name) for name in fields
        ) != masks:
            raise CompileError("hash template prerequisite (global mask) violated")
        key = _hash_key_of(entry.match, fields)
        if key not in items:  # first occurrence = highest priority wins
            items[key] = outcome_of(entry)
    # One bulk build instead of insert-at-a-time: a million-entry table
    # pays a single layout search, not an incremental growth sequence.
    store = CollisionFreeHash(items)

    miss = outcome_of(catch_all) if catch_all is not None else miss_outcome(table)
    guards = _guards(first)
    namespace: dict = {"_MISS": miss, "_H": store}
    key_expr = _key_exprs(fields, masks)
    guard = (
        [f"    if not ({' and '.join(guards)}):", "        return _MISS"]
        if guards
        else []
    )
    lines = (
        [
            "def _match(data, pkt, l3, l4, proto, etype, nxt, m):",
            f"    m.charge({costs.hash_base!r})",
        ]
        + guard
        + [
            f"    v, _ln = _H.get_traced({key_expr})",
            f"    m.touch(('es_hash', {table.table_id}, _ln))",
            "    if v is None:",
            "        return _MISS",
            "    return v",
        ]
    )
    source = "\n".join(lines) + "\n"
    fn = _compile(source, namespace, table.table_id, TemplateKind.HASH)
    return CompiledTable(
        table_id=table.table_id,
        kind=TemplateKind.HASH,
        fn=fn,
        source=source,
        namespace=namespace,
        miss=miss,
        hash_store=store,
        hash_fields=fields,
        hash_masks=masks,
        entry_count=len(table),
    )


def _hash_key_of(match: Match, fields: tuple[str, ...]):
    values = tuple(match.value_of(name) for name in fields)
    return values[0] if len(values) == 1 else values


def compile_lpm(
    table: FlowTable,
    config: CompileConfig = DEFAULT_CONFIG,
    costs: CostBook = DEFAULT_COSTS,
) -> CompiledTable:
    """The LPM template backed by the DIR-24-8 ``rte_lpm`` structure."""
    rules, catch_all = split_catch_all(table.entries)
    if not rules:
        raise CompileError("LPM template needs at least one prefix entry")
    name = rules[0].match.fields[0]
    # Growable tbl8 pool: a million-prefix FIB allocates whatever /25+
    # groups it needs instead of tripping a fixed ceiling.
    store = Dir24_8Lpm()
    outcomes: list[Outcome] = []
    adds: list[tuple[int, int, int]] = []
    seen: set[tuple[int, int]] = set()
    for entry in rules:
        match = entry.match
        if match.fields != (name,) or not match.is_prefix(name):
            raise CompileError("LPM template prerequisite (prefix masks) violated")
        value = match.value_of(name)
        depth = match.prefix_len(name)
        assert value is not None
        norm = (Dir24_8Lpm._prefix(value, depth), depth)
        if norm in seen:
            continue  # shadowed duplicate: the highest-priority rule wins
        seen.add(norm)
        adds.append((value, depth, len(outcomes)))
        outcomes.append(outcome_of(entry))
    store.add_bulk(adds)

    miss = outcome_of(catch_all) if catch_all is not None else miss_outcome(table)
    fdef = field_by_name(name)
    req = fdef.proto_required
    namespace: dict = {"_MISS": miss, "_LPM": store, "_OUT": outcomes}
    guard = (
        [f"    if not (proto & {req:#x}):", "        return _MISS"]
        if req
        else []
    )
    lines = (
        [
            "def _match(data, pkt, l3, l4, proto, etype, nxt, m):",
            f"    m.charge({costs.lpm_base!r})",
        ]
        + guard
        + [
            f"    nh, _lines = _LPM.lookup_traced({_field_expr(name)})",
            "    for _ln in _lines:",
            f"        m.touch(('es_lpm', {table.table_id}, _ln))",
            "    if nh is None:",
            "        return _MISS",
            "    return _OUT[nh]",
        ]
    )
    source = "\n".join(lines) + "\n"
    fn = _compile(source, namespace, table.table_id, TemplateKind.LPM)
    return CompiledTable(
        table_id=table.table_id,
        kind=TemplateKind.LPM,
        fn=fn,
        source=source,
        namespace=namespace,
        miss=miss,
        lpm_store=store,
        lpm_field=name,
        entry_count=len(table),
    )


def compile_linked_list(
    table: FlowTable,
    config: CompileConfig = DEFAULT_CONFIG,
    costs: CostBook = DEFAULT_COSTS,
) -> CompiledTable:
    """The linked list template: tuple space search with shared matchers.

    "For every relevant combination of fields a separate matcher function
    is constructed … and these matchers are called iteratively with
    subsequent flow entry keys as input" (Section 3.1). The matcher
    functions are themselves generated code, one per mask signature, shared
    across all entries with that signature.
    """
    rules, catch_all = split_catch_all(table.entries)
    miss = outcome_of(catch_all) if catch_all is not None else miss_outcome(table)

    matchers: dict[tuple, object] = {}
    entries: list[tuple[tuple, object, tuple, Outcome]] = []
    namespace: dict = {"_MISS": miss}
    for entry in rules:
        sig = tuple((name, mask) for name, (_v, mask) in entry.match.items())
        fn = matchers.get(sig)
        if fn is None:
            fn = _build_sig_matcher(sig, len(matchers))
            matchers[sig] = fn
        values = tuple(v for _name, (v, _m) in entry.match.items())
        entries.append((_guard_masks(entry.match), fn, values, outcome_of(entry)))
    namespace["_ENTRIES"] = entries

    lines = [
        "def _match(data, pkt, l3, l4, proto, etype, nxt, m):",
        f"    m.charge({costs.linked_list_base!r})",
        "    for _i, (_req, _fn, _vals, _out) in enumerate(_ENTRIES):",
        f"        m.charge({costs.linked_list_per_entry!r})",
        f"        m.touch(('es_ll', {table.table_id}, _i >> 2))",
        "        if all(proto & _g for _g in _req) and _fn(data, pkt, l3, l4, proto, etype, nxt, _vals):",
        "            return _out",
        "    return _MISS",
    ]
    source = "\n".join(lines) + "\n"
    fn = _compile(source, namespace, table.table_id, TemplateKind.LINKED_LIST)
    return CompiledTable(
        table_id=table.table_id,
        kind=TemplateKind.LINKED_LIST,
        fn=fn,
        source=source,
        namespace=namespace,
        miss=miss,
        ll_entries=entries,
        ll_matchers=matchers,
        entry_count=len(table),
    )


def _guard_masks(match: Match) -> tuple[int, ...]:
    """Any-of protocol guard masks for a match's constrained fields."""
    return tuple(
        sorted(
            {
                field_by_name(name).proto_required
                for name in match.fields
                if field_by_name(name).proto_required
            }
        )
    )


def _build_sig_matcher(sig: tuple, index: int):
    """Generate the shared matcher function for one field combination."""
    conds = []
    for i, (name, mask) in enumerate(sig):
        fdef = field_by_name(name)
        expr = _field_expr(name)
        if mask == fdef.max_value:
            conds.append(f"({expr}) == vals[{i}]")
        else:
            conds.append(f"(({expr}) & {mask:#x}) == vals[{i}]")
    body = " and ".join(conds) if conds else "True"
    source = (
        f"def _sig(data, pkt, l3, l4, proto, etype, nxt, vals):\n    return {body}\n"
    )
    namespace: dict = {}
    exec(compile(source, f"<eswitch:sig{index}>", "exec"), namespace)
    fn = namespace["_sig"]
    fn._source = source  # kept for inspection/tests
    return fn


def compile_range(
    table: FlowTable,
    config: CompileConfig = DEFAULT_CONFIG,
    costs: CostBook = DEFAULT_COSTS,
) -> CompiledTable:
    """The range-search template for port matches (optional extension).

    Section 3.1 lists "range search for port matches" as a table template
    that "can easily be added in the future": exact port rules coalesce
    into ``(lo, hi) -> outcome`` intervals looked up by binary search —
    one interval instead of thousands of hash entries for an
    "allow 1024–2047"-style rule block.
    """
    runs = port_runs(table.entries)
    mapped = port_map(table.entries)
    if runs is None or mapped is None:
        raise CompileError("range template prerequisite (exact port runs) violated")
    rules, catch_all = split_catch_all(table.entries)
    miss = outcome_of(catch_all) if catch_all is not None else miss_outcome(table)
    name, by_port = mapped
    fdef = field_by_name(name)
    req = fdef.proto_required

    starts = [lo for lo, _hi, _e in runs]
    ends = [hi for _lo, hi, _e in runs]
    # One outcome per PORT, grouped by run: rules merged into a run share
    # behavior but keep distinct identity (flow counters, verdict paths),
    # so the hit must resolve to the exact port's entry — the same entry
    # the reference interpreter credits.
    outs = [
        [outcome_of(by_port[port]) for port in range(lo, hi + 1)]
        for lo, hi, _e in runs
    ]
    levels = max(1, math.ceil(math.log2(len(runs) + 1)))

    namespace: dict = {
        "_MISS": miss,
        "_STARTS": starts,
        "_ENDS": ends,
        "_OUTS": outs,
        "_bisect": bisect.bisect_right,
    }
    guard = (
        [f"    if not (proto & {req:#x}):", "        return _MISS"]
        if req
        else []
    )
    lines = (
        [
            "def _match(data, pkt, l3, l4, proto, etype, nxt, m):",
            f"    m.charge({costs.range_base + costs.range_per_level * levels!r})",
        ]
        + guard
        + [
            f"    _p = {_field_expr(name)}",
            "    _i = _bisect(_STARTS, _p) - 1",
            f"    m.touch(('es_range', {table.table_id}, _i >> 3))",
            "    if _i >= 0 and _p <= _ENDS[_i]:",
            "        return _OUTS[_i][_p - _STARTS[_i]]",
            "    return _MISS",
        ]
    )
    source = "\n".join(lines) + "\n"
    fn = _compile(source, namespace, table.table_id, TemplateKind.RANGE)
    return CompiledTable(
        table_id=table.table_id,
        kind=TemplateKind.RANGE,
        fn=fn,
        source=source,
        namespace=namespace,
        miss=miss,
        entry_count=len(table),
    )


_EMITTERS = {
    TemplateKind.DIRECT: compile_direct,
    TemplateKind.HASH: compile_hash,
    TemplateKind.LPM: compile_lpm,
    TemplateKind.LINKED_LIST: compile_linked_list,
    TemplateKind.RANGE: compile_range,
}


def compile_table(
    table: FlowTable,
    config: CompileConfig = DEFAULT_CONFIG,
    costs: CostBook = DEFAULT_COSTS,
    kind: "TemplateKind | None" = None,
) -> CompiledTable:
    """Analyze (unless ``kind`` forces a template) and compile one table."""
    if kind is None:
        kind = select_template(table.entries, config)
    return _EMITTERS[kind](table, config, costs)
