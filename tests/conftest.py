"""Shared test configuration."""

import sys
from pathlib import Path

# Make `import strategies` work from any test subdirectory.
sys.path.insert(0, str(Path(__file__).parent))
