"""ShardedESwitch: N replicas, one facade — scatter, gather, epoch-sync,
and a supervision layer that keeps the facade standing when replicas die.

The engine owns:

* **N shard workers** (processes when the platform allows, threads as a
  degraded-but-correct fallback), each running a private fused
  :class:`ESwitch` replica (:mod:`repro.parallel.worker`);
* a **shadow replica** in the engine's own process — the authoritative
  control-plane state. Flow-mods apply to the shadow *first* (its
  transactional semantics validate the batch before anything is
  broadcast), inspection (``table_kinds``, flow stats) reads it, and
  gathered verdict paths re-bind to its entries;
* the **RSS scatter** (:mod:`repro.parallel.rss`): each packet of a
  burst hashes through an indirection table to a shard, sub-bursts ship
  to the workers, and verdicts gather back **in input order** — callers
  see exactly the ``process_burst`` contract of a single switch;
* the **epoch barrier**: every ``apply_flow_mod(s)`` broadcast bumps the
  engine epoch and blocks until all workers ack — and a worker only
  acks after its replica has applied the batch, flushed deferred
  rebuilds, and re-fused. Bursts are tagged with the engine epoch and
  workers refuse mismatched tags, so **no gathered burst can mix
  verdicts from two pipeline generations** (Section 3.4's atomic
  non-destructive update story, extended across cores).

Supervision (what makes the facade *fault-tolerant*):

* every pipe round-trip — burst, flow-mod broadcast, liveness ping,
  stats pull — is **deadline-bounded** (``rpc_deadline`` seconds);
  a worker that neither answers nor dies within the deadline is
  treated exactly like a dead one: reaped and never spoken to again
  (a late reply from a zombie must never poison the stream);
* a dead or deadline-blown worker is **respawned** from a snapshot of
  the shadow pipeline *at the engine's current epoch* — replacements
  are born current and never replay history. During a flow-mod
  broadcast the shadow has already applied the batch, so a worker that
  dies *inside* the barrier is replaced by one born at the new epoch
  with the full batch applied: the barrier cannot wedge and no
  half-applied generation can ack;
* a sub-burst lost to a fault is **retried with bounded backoff** —
  re-scattered through the (possibly remapped) RSS table onto the
  respawned worker or the survivors — so callers still see the
  single-switch contract. Metering stays exact: a failed attempt never
  shipped its meter delta, so only the successful attempt is absorbed;
* after ``max_respawns`` failed resurrections a shard slot **degrades**:
  its RSS slots remap over the survivors
  (:class:`~repro.parallel.rss.RssIndirection`) and the engine keeps
  serving, surfacing the state through :meth:`health`.

Fault-exactness of the numbers (why a kill is unobservable in them):

* **flow counters** — every burst reply carries the per-entry counter
  deltas the sub-burst earned (:func:`repro.parallel.wire.
  counter_deltas`); the engine folds them into a ledger keyed by shadow
  entry. A worker that dies holding an unsent reply takes exactly its
  unacked deltas with it, and the retry re-earns them — so
  :meth:`sync_flow_stats` is exact across deaths, needs no RPC, and
  cannot itself fault;
* **burst telemetry** — the engine records every *acked* sub-burst into
  a per-slot :class:`BurstStats` ledger, so :meth:`merged_burst_stats`
  survives worker loss bit for bit;
* **modeled cycles** — each worker meters on its own persistent
  per-core :class:`CycleMeter`; the gather folds the acked shard deltas
  into the caller's meter via :meth:`CycleMeter.absorb`, summing with
  ``math.fsum`` so the merged total is exact and independent of shard
  enumeration order. A respawned replica starts a fresh per-core meter
  (cold private caches — a freshly booted core), and for ``workers=1``
  without faults the total is bit-identical to a single ``ESwitch``.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.analysis import CompileConfig, DEFAULT_CONFIG
from repro.core.eswitch import ESwitch, SwitchHealth
from repro.openflow.messages import (
    ErrorMsg,
    ErrorType,
    FlowMod,
    FlowModFailed,
    FlowModFailedCode,
    FlowModReply,
)
from repro.openflow.pipeline import Pipeline, Verdict
from repro.openflow.stats import BurstStats
from repro.packet.packet import Packet
from repro.parallel.rss import RssIndirection
from repro.parallel.wire import EntryIndexCache, decode_verdicts, encode_packets
from repro.parallel.worker import shard_worker_main, thread_channel_pair
from repro.simcpu.costs import CostBook, DEFAULT_COSTS
from repro.simcpu.platform import Platform, XEON_E5_2620
from repro.simcpu.recorder import Meter, NULL_METER, NullMeter


class ShardWorkerError(RuntimeError):
    """A shard worker reported an exception (its traceback is attached)."""


class WorkerDied(ShardWorkerError):
    """A worker's channel went dead mid-RPC (crash, OOM kill, exit)."""


class WorkerTimeout(ShardWorkerError):
    """A worker blew the RPC deadline (hang, livelock, swap storm)."""


class EpochSyncError(RuntimeError):
    """A gathered burst spanned two pipeline generations (should be
    impossible: the broadcast barrier exists to prevent exactly this)."""


@dataclass(frozen=True)
class EngineHealth:
    """A point-in-time snapshot of the engine's supervision telemetry."""

    workers: int                       #: configured shard count
    live_workers: int                  #: shards currently serving
    faults_detected: int               #: deaths + blown deadlines observed
    respawns: int                      #: replacement workers forked
    retries: int                       #: sub-burst re-execution rounds
    degraded_shards: tuple[int, ...]   #: slots permanently remapped away
    liveness: tuple[bool, ...]         #: per-slot: is a worker serving it
    epoch: int                         #: current pipeline generation
    #: workers that answered a broadcast with a logic error (e.g. an
    #: injected compile fault) and were replaced from the shadow.
    worker_errors: int = 0
    #: the shadow replica's own fail-static snapshot (quarantines,
    #: contained compile/fuse failures) — the control-plane half of the
    #: engine's health.
    switch_health: "SwitchHealth | None" = None

    @property
    def degraded(self) -> bool:
        # Quarantined tables degrade the whole engine (every replica runs
        # the same quarantined build); the shadow's fused_active does not —
        # the shadow is control-plane-only and fuses lazily.
        return bool(self.degraded_shards) or bool(
            self.switch_health is not None and self.switch_health.quarantined
        )

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "live_workers": self.live_workers,
            "faults_detected": self.faults_detected,
            "respawns": self.respawns,
            "retries": self.retries,
            "degraded_shards": list(self.degraded_shards),
            "liveness": list(self.liveness),
            "epoch": self.epoch,
            "worker_errors": self.worker_errors,
            "switch": (
                self.switch_health.as_dict()
                if self.switch_health is not None
                else None
            ),
        }


class _ProcessShard:
    """One worker process plus its engine-side pipe end."""

    def __init__(self, index, blob, config, costs, platform,
                 start_epoch=0, injector=None, generation=0):
        import multiprocessing as mp

        ctx = mp.get_context("fork") if hasattr(os, "fork") else mp.get_context()
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=shard_worker_main,
            args=(child_conn, blob, config, costs, platform,
                  index, start_epoch, injector, generation),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()

    def poll(self, timeout: float) -> bool:
        return self.conn.poll(timeout)

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
            self.conn.recv()
        except (OSError, EOFError, BrokenPipeError):
            pass
        self.conn.close()
        self.proc.join(timeout=5)
        if self.proc.is_alive():  # pragma: no cover - defensive
            self.proc.terminate()
            self.proc.join(timeout=5)

    def reap(self) -> None:
        """Put down a dead or unresponsive worker, no questions asked."""
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        self.proc.terminate()
        self.proc.join(timeout=5)
        if self.proc.is_alive():  # pragma: no cover - defensive
            self.proc.kill()
            self.proc.join(timeout=5)


class _ThreadShard:
    """One worker thread plus its engine-side channel end (fallback)."""

    def __init__(self, index, blob, config, costs, platform,
                 start_epoch=0, injector=None, generation=0):
        import threading

        self.conn, child_conn = thread_channel_pair()
        self.proc = threading.Thread(
            target=shard_worker_main,
            args=(child_conn, blob, config, costs, platform,
                  index, start_epoch, injector, generation),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        self.proc.start()

    def poll(self, timeout: float) -> bool:
        return self.conn.poll(timeout)

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
            self.conn.recv()
        except (OSError, EOFError):
            pass
        self.proc.join(timeout=5)

    def reap(self) -> None:
        # A hung thread cannot be killed; closing the channel makes its
        # next recv raise EOFError and the (daemon) thread wind down.
        self.conn.close()


class _ShardSlot:
    """Engine-side state of one RSS shard position.

    The slot outlives any single worker: its :class:`BurstStats` ledger
    accumulates every sub-burst the engine successfully gathered for
    this position, across respawns, and survives degradation.
    """

    __slots__ = ("index", "shard", "respawns", "stats", "degraded")

    def __init__(self, index: int, shard) -> None:
        self.index = index
        self.shard = shard          # None once degraded
        self.respawns = 0
        self.stats = BurstStats()
        self.degraded = False


class ShardedESwitch:
    """An OpenFlow switch whose datapath is N parallel fused replicas.

    Duck-type compatible with :class:`ESwitch` where the measurement
    harnesses care (``process``, ``process_burst``, ``apply_flow_mod``,
    ``apply_flow_mods``, ``burst_stats``, ``pipeline``, ``table_kinds``)
    — :func:`repro.traffic.measure` and the wall-clock rig drive it
    unchanged. Reactive ``packet_in_handler`` callbacks are deliberately
    unsupported: a controller callback would have to preempt remote
    replicas mid-burst; punted packets still come back with
    ``to_controller`` set for the caller to handle at the gather.

    Supervision knobs (see the module docstring for semantics):

    * ``rpc_deadline`` — seconds any worker round-trip may take
      (``None`` disables deadlines: block forever, pre-supervision
      behavior);
    * ``max_retries`` — re-execution rounds for a faulted sub-burst
      before the burst errors out;
    * ``retry_backoff`` — base seconds slept before a retry round,
      doubling each round (bounded exponential backoff);
    * ``max_respawns`` — replacement workers per shard slot before the
      slot degrades (0 disables respawn: first fault degrades);
    * ``fault_injector`` — a :class:`~repro.parallel.faults.
      FaultInjector` test hook wired into every worker.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        workers: "int | None" = None,
        *,
        config: CompileConfig = DEFAULT_CONFIG,
        costs: CostBook = DEFAULT_COSTS,
        platform: Platform = XEON_E5_2620,
        backend: str = "auto",
        rss_seed: int = 0,
        rpc_deadline: "float | None" = 30.0,
        max_retries: int = 3,
        retry_backoff: float = 0.05,
        max_respawns: int = 2,
        fault_injector=None,
    ):
        if workers is None:
            workers = max(1, (os.cpu_count() or 2) - 1)
        if workers < 1:
            raise ValueError("need at least one shard worker")
        if backend not in ("auto", "process", "thread"):
            raise ValueError(f"unknown backend {backend!r}")
        if rpc_deadline is not None and rpc_deadline <= 0:
            raise ValueError("rpc_deadline must be positive (or None)")
        if max_retries < 0 or max_respawns < 0 or retry_backoff < 0:
            raise ValueError("supervision knobs must be non-negative")
        pipeline.validate()
        self.workers = workers
        self.rss_seed = rss_seed
        self.rpc_deadline = rpc_deadline
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.max_respawns = max_respawns
        self.fault_injector = fault_injector
        self.epoch = 0
        self.burst_stats = BurstStats()
        self.faults_detected = 0
        self.respawns = 0
        self.retries = 0
        self.worker_errors = 0
        #: epochs reported by the shards of the most recent gather — the
        #: atomicity witness (all equal, and equal to ``self.epoch``).
        self.last_gather_epochs: tuple[int, ...] = ()
        blob = pickle.dumps(pipeline)
        # The shadow is built from its own snapshot: the engine never
        # mutates the caller's pipeline object.
        self.shadow = ESwitch(pickle.loads(blob), config=config, costs=costs)
        self._config, self._costs, self._platform = config, costs, platform
        self._decode_cache = EntryIndexCache(self.shadow.pipeline)
        self._rss = RssIndirection(workers, seed=rss_seed)
        #: shadow entry_id -> [packets, bytes]: flow counters earned by
        #: every *acked* sub-burst (the fault-exact statistics ledger).
        #: Seeded with the construction-time baseline so a pipeline that
        #: arrives with history keeps it (workers seed their ``shipped``
        #: baselines the same way and never re-report it).
        self._counter_ledger: dict[int, list[int]] = {
            entry.entry_id: [entry.counters.packets, entry.counters.bytes]
            for table in self.shadow.pipeline
            for entry in table.entries
            if entry.counters.packets or entry.counters.bytes
        }
        self._slots: list[_ShardSlot] = []
        self.backend = self._spawn(backend, blob)
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self, backend, blob) -> str:
        kinds = []
        if backend in ("auto", "process"):
            kinds.append(("process", _ProcessShard))
        if backend in ("auto", "thread"):
            kinds.append(("thread", _ThreadShard))
        last_error: "Exception | None" = None
        for name, factory in kinds:
            shards: list = []
            try:
                for i in range(self.workers):
                    shards.append(
                        factory(i, blob, self._config, self._costs,
                                self._platform, 0, self.fault_injector, 0)
                    )
                for shard in shards:
                    reply = shard.conn.recv()
                    if reply[0] != "ready":
                        raise ShardWorkerError(f"{reply[1]}\n{reply[2]}")
                self._factory = factory
                self._slots = [_ShardSlot(i, s) for i, s in enumerate(shards)]
                return name
            except ShardWorkerError:
                raise  # the replica itself failed to build: not a backend issue
            except Exception as exc:  # pragma: no cover - platform dependent
                last_error = exc
                for shard in shards:
                    shard.stop()
        raise ShardWorkerError(
            f"could not start any shard backend: {last_error!r}"
        )  # pragma: no cover

    def close(self) -> None:
        """Stop all shard workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            if slot.shard is not None:
                slot.shard.stop()
                slot.shard = None

    def __enter__(self) -> "ShardedESwitch":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    # -- supervision -------------------------------------------------------

    def health(self) -> EngineHealth:
        """The engine's current supervision telemetry snapshot."""
        liveness = tuple(slot.shard is not None for slot in self._slots)
        return EngineHealth(
            workers=self.workers,
            live_workers=sum(liveness),
            faults_detected=self.faults_detected,
            respawns=self.respawns,
            retries=self.retries,
            degraded_shards=tuple(
                slot.index for slot in self._slots if slot.degraded
            ),
            liveness=liveness,
            epoch=self.epoch,
            worker_errors=self.worker_errors,
            switch_health=self.shadow.health(),
        )

    def ping(self) -> dict[int, int]:
        """Deadline-bounded liveness probe: ``{slot index: applied epoch}``.

        A shard that fails the probe is handled like any other fault
        (respawn or degrade), so the returned map covers exactly the
        workers that are *proven* responsive right now.
        """
        out: dict[int, int] = {}
        for slot in self._live_slots():
            try:
                slot.shard.conn.send(("ping",))
                reply = self._rpc_recv(slot)
                out[slot.index] = reply[1]
            except (WorkerDied, WorkerTimeout):
                self._handle_fault(slot, self.epoch)
        return out

    def _live_slots(self) -> list[_ShardSlot]:
        return [slot for slot in self._slots if slot.shard is not None]

    def _rpc_recv(self, slot: _ShardSlot):
        """One deadline-bounded receive; raises typed supervision errors."""
        shard = slot.shard
        deadline = self.rpc_deadline
        if deadline is not None and not shard.poll(deadline):
            raise WorkerTimeout(
                f"shard {slot.index} blew the {deadline}s RPC deadline"
            )
        try:
            reply = shard.conn.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise WorkerDied(f"shard {slot.index} died mid-RPC: {exc!r}")
        if reply[0] == "error":
            # The worker is alive and reported a logic error: that is an
            # invariant violation to raise, not a fault to supervise.
            raise ShardWorkerError(f"{reply[1]}\n{reply[2]}")
        return reply

    def _respawn_blob(self) -> bytes:
        """The shadow pipeline, counters zeroed: what a replacement runs.

        A replacement's flow counters must start from nothing — the
        engine's ledger already holds everything the dead worker acked,
        and the replica will re-earn (and re-report) only what it
        actually processes.
        """
        pl = pickle.loads(pickle.dumps(self.shadow.pipeline))
        for table in pl:
            for entry in table.entries:
                entry.counters.packets = 0
                entry.counters.bytes = 0
        return pickle.dumps(pl)

    def _handle_fault(self, slot: _ShardSlot, epoch: int) -> bool:
        """Reap a faulted worker; respawn it at ``epoch`` or degrade.

        Returns True when a replacement is serving the slot, False when
        the slot degraded (its RSS slots now route to survivors).
        """
        self.faults_detected += 1
        if slot.shard is not None:
            slot.shard.reap()
            slot.shard = None
        blob = None
        while slot.respawns < self.max_respawns:
            slot.respawns += 1
            self.respawns += 1
            if blob is None:
                blob = self._respawn_blob()
            try:
                shard = self._factory(
                    slot.index, blob, self._config, self._costs, self._platform,
                    epoch, self.fault_injector, slot.respawns,
                )
                deadline = self.rpc_deadline if self.rpc_deadline is not None else 30.0
                if not shard.poll(deadline):
                    shard.reap()
                    raise WorkerTimeout(
                        f"shard {slot.index} replacement missed the ready handshake"
                    )
                reply = shard.conn.recv()
                if reply[0] != "ready":
                    shard.reap()
                    raise ShardWorkerError(f"{reply[1]}\n{reply[2]}")
            except (WorkerDied, WorkerTimeout, EOFError, OSError):
                # The replacement itself failed to come up: count it and
                # spend another respawn (or fall through to degradation).
                self.faults_detected += 1
                continue
            slot.shard = shard
            return True
        self._degrade(slot)
        return False

    def _degrade(self, slot: _ShardSlot) -> None:
        """Remap a dead slot's RSS slots over the survivors — for good."""
        slot.degraded = True
        slot.shard = None
        survivors = [s.index for s in self._live_slots()]
        if not survivors:
            raise ShardWorkerError(
                "every shard worker is lost; the engine cannot degrade further"
            )
        self._rss.remap(slot.index, survivors)

    # -- the fast path -----------------------------------------------------

    def process(self, pkt: Packet, meter: Meter = NULL_METER) -> Verdict:
        """Run one packet through its RSS shard (a burst of one)."""
        return self.process_burst([pkt], meter)[0]

    def process_burst(
        self, pkts: "Sequence[Packet]", meter: Meter = NULL_METER
    ) -> list[Verdict]:
        """Scatter one burst over the shards, gather in input order.

        Survives worker faults mid-burst: lost sub-bursts are retried
        (on a respawned worker or rerouted to survivors) under bounded
        backoff, and only successfully gathered attempts contribute
        verdicts, cycles, counters, and telemetry.
        """
        if self._closed:
            raise RuntimeError("ShardedESwitch is closed")
        if not pkts:
            return []
        mode = "null" if isinstance(meter, NullMeter) else "cycle"
        verdicts: list = [None] * len(pkts)
        deltas: list[float] = []
        metered_packets = 0
        llc = 0
        epochs: list[int] = []

        pending = list(range(len(pkts)))
        attempt = 0
        while pending:
            failed = self._scatter_gather(
                pending, pkts, mode, verdicts, deltas, epochs
            )
            if not failed:
                break
            attempt += 1
            if attempt > self.max_retries:
                raise ShardWorkerError(
                    f"burst lost {len(failed)} packets to worker faults and "
                    f"exhausted {self.max_retries} retries"
                )
            self.retries += 1
            if self.retry_backoff:
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
            pending = failed

        self.last_gather_epochs = tuple(epochs)
        epoch = self.epoch
        if any(e != epoch for e in epochs):
            raise EpochSyncError(
                f"gather saw epochs {epochs}, engine at {epoch}"
            )
        total = math.fsum(d for d, _n, _l in deltas) if deltas else 0.0
        if deltas:
            metered_packets = sum(n for _d, n, _l in deltas)
            llc = sum(l for _d, _n, l in deltas)
            absorb = getattr(meter, "absorb", None)
            if absorb is not None:
                absorb(total, packets=metered_packets, llc_misses=llc)
            else:  # a plain Meter: cycles arrive pre-factored
                meter.charge(total)
        self.burst_stats.record(len(pkts), total)
        return verdicts

    def _scatter_gather(
        self, pending, pkts, mode, verdicts, deltas, epochs
    ) -> list[int]:
        """One scatter/gather round over the live slots.

        Fills ``verdicts`` (by input position), appends acked meter
        deltas and epochs, folds acked counter deltas into the ledger,
        and returns the input positions lost to faults (already handled:
        their slots are respawned or degraded by the time this returns).
        """
        shard_for = self._rss.shard_for
        lanes: dict[int, list[int]] = {}
        if len(self._slots) == 1 and not self._slots[0].degraded:
            lanes[0] = list(pending)
        else:
            for i in pending:
                lanes.setdefault(shard_for(pkts[i].data), []).append(i)
        epoch = self.epoch
        # Scatter first (all sends before any receive: the workers run
        # their sub-bursts genuinely in parallel), then gather.
        active: list[tuple[_ShardSlot, list[int]]] = []
        failed: list[int] = []
        for sidx, lane in lanes.items():
            slot = self._slots[sidx]
            wires = encode_packets([pkts[i] for i in lane])
            try:
                slot.shard.conn.send(("burst", epoch, mode, wires))
            except (OSError, BrokenPipeError, ValueError):
                self._handle_fault(slot, epoch)
                failed.extend(lane)
                continue
            active.append((slot, lane))
        cache = self._decode_cache
        for slot, lane in active:
            try:
                reply = self._rpc_recv(slot)
            except (WorkerDied, WorkerTimeout):
                self._handle_fault(slot, epoch)
                failed.extend(lane)
                continue
            (_, shard_epoch, wire_verdicts, cycles, packets, shard_llc,
             counter_deltas) = reply
            epochs.append(shard_epoch)
            for i, verdict in zip(lane, decode_verdicts(wire_verdicts, cache)):
                verdicts[i] = verdict
            self._absorb_counters(counter_deltas)
            slot.stats.record(len(lane), cycles if cycles is not None else 0.0)
            if cycles is not None:
                deltas.append((cycles, packets, shard_llc))
        return failed

    def _absorb_counters(self, wire_deltas) -> None:
        """Fold one acked sub-burst's counter deltas into the ledger."""
        if not wire_deltas:
            return
        _, entries_by = self._decode_cache.maps()
        ledger = self._counter_ledger
        for ltid, idx, d_packets, d_bytes in wire_deltas:
            entries = entries_by.get(ltid)
            if entries is None or idx >= len(entries):  # pragma: no cover
                continue  # entry vanished (cannot happen within an epoch)
            cell = ledger.setdefault(entries[idx].entry_id, [0, 0])
            cell[0] += d_packets
            cell[1] += d_bytes

    # -- control plane -----------------------------------------------------

    def apply_flow_mod(self, mod: FlowMod) -> float:
        """Apply one flow-mod everywhere; one epoch, one barrier."""
        return self.apply_flow_mods([mod])

    def apply_flow_mods(self, mods: Sequence[FlowMod]) -> float:
        """Transactional batch broadcast under the epoch barrier.

        The shadow validates first: a failing batch raises here, rolls
        back locally, and is **never broadcast** — replicas cannot
        diverge through a rejected update. On success every worker
        applies the same batch, swaps its fused datapath, and acks; only
        then does the engine epoch advance and the next burst flow.

        A worker that dies or hangs *inside* the barrier cannot wedge
        it: the deadline bounds the wait, and the replacement is forked
        from the shadow — which already holds the full batch — at the
        new epoch. Every surviving and respawned worker therefore ends
        the call on the same epoch with the whole batch applied; a
        half-applied replica can only ever be a corpse.

        Returns the shadow's modeled update cost in cycles (one core's
        control-plane work, comparable to ``ESwitch.apply_flow_mods``);
        per-replica costs are summed in ``update_stats`` terms on each
        worker.
        """
        if self._closed:
            raise RuntimeError("ShardedESwitch is closed")
        mods = list(mods)
        if not mods:
            return 0.0
        cycles = self.shadow.apply_flow_mods(mods)  # validates; may raise
        self.shadow.warm()
        new_epoch = self.epoch + 1
        waiting: list[_ShardSlot] = []
        for slot in self._live_slots():
            try:
                slot.shard.conn.send(("mods", new_epoch, mods))
            except (OSError, BrokenPipeError, ValueError):
                # Died before the batch even arrived: the replacement is
                # born from the shadow at the new epoch, nothing to ack.
                self._handle_fault(slot, new_epoch)
                continue
            waiting.append(slot)
        for slot in waiting:
            try:
                reply = self._rpc_recv(slot)
            except (WorkerDied, WorkerTimeout):
                self._handle_fault(slot, new_epoch)
                continue
            except ShardWorkerError:
                # The replica errored applying a batch the shadow already
                # accepted (e.g. an injected compile fault): it is
                # logically diverged and must not serve another burst.
                # Replace it from the shadow — which holds the batch — at
                # the new epoch; the barrier still ends with every live
                # shard on the same generation.
                self.worker_errors += 1
                self._handle_fault(slot, new_epoch)
                continue
            if reply[0] != "mods" or reply[1] != new_epoch:
                raise EpochSyncError(
                    f"worker acked {reply[:2]}, expected ('mods', {new_epoch})"
                )
        self.epoch = new_epoch
        return cycles

    def admit_flow_mods(self, mods: Sequence[FlowMod]) -> list[ErrorMsg]:
        """Validate a batch against the shadow replica without touching it."""
        return self.shadow.admit_flow_mods(mods)

    def submit_flow_mods(self, mods: Sequence[FlowMod]) -> FlowModReply:
        """Admission-controlled broadcast: the control-plane entry point.

        Admission runs on the shadow replica first; a rejected batch is
        answered with typed errors, never broadcast, and leaves the
        engine bit-untouched — the epoch does not advance and every
        worker keeps serving the prior pipeline generation, so batch
        invisibility extends across shards. An accepted batch runs the
        epoch-barrier broadcast of :meth:`apply_flow_mods`.
        """
        if self._closed:
            raise RuntimeError("ShardedESwitch is closed")
        mods = list(mods)
        if not mods:
            return FlowModReply(accepted=True)
        errors = self.shadow.admit_flow_mods(mods)
        if errors:
            return FlowModReply(accepted=False, errors=tuple(errors))
        try:
            cycles = self.apply_flow_mods(mods)
        except FlowModFailed as exc:
            return FlowModReply(accepted=False, errors=(exc.error,))
        except Exception as exc:  # contained: the control plane never raises
            return FlowModReply(
                accepted=False,
                errors=(
                    ErrorMsg(
                        ErrorType.FLOW_MOD_FAILED,
                        FlowModFailedCode.UNKNOWN,
                        f"{type(exc).__name__}: {exc}",
                    ),
                ),
            )
        return FlowModReply(accepted=True, cycles=cycles)

    # -- statistics --------------------------------------------------------

    def shard_burst_stats(self) -> list[BurstStats]:
        """Each shard slot's :class:`BurstStats` ledger (engine-side).

        The ledgers count every sub-burst the engine successfully
        gathered, so they are complete even across worker deaths,
        respawns, and degradation — a killed worker's unacked attempt
        was retried elsewhere and is counted exactly once.
        """
        return [BurstStats.merged([slot.stats]) for slot in self._slots]

    def merged_burst_stats(self) -> BurstStats:
        """All shards' burst telemetry, merged order-independently."""
        return BurstStats.merged(self.shard_burst_stats())

    def pull_worker_stats(self) -> list["BurstStats | None"]:
        """Debug pull of each live worker's *own* telemetry over the pipe.

        Deadline-bounded like every RPC; a faulted worker yields None
        (and is respawned or degraded). The engine-side ledgers are the
        authoritative numbers — this exists to cross-check them.
        """
        out: list = [None] * len(self._slots)
        for slot in self._live_slots():
            try:
                slot.shard.conn.send(("stats",))
                reply = self._rpc_recv(slot)
            except (WorkerDied, WorkerTimeout, OSError, BrokenPipeError):
                self._handle_fault(slot, self.epoch)
                continue
            out[slot.index] = reply[1]
        return out

    def sync_flow_stats(self) -> None:
        """Write the counter ledger onto the shadow pipeline's entries.

        After this, ``collect_flow_stats(engine.pipeline)`` reports the
        cross-shard totals — exactly the counters a sequential run over
        the same packets would have recorded (counting is commutative,
        and the ledger absorbs only acked sub-bursts, so worker deaths
        and retries cannot skew it). Purely local: no worker RPC, no
        deadline, no fault path — safe to call from an expiry sweep at
        any time.
        """
        ledger = self._counter_ledger
        for table in self.shadow.pipeline:
            for entry in table.entries:
                packets, nbytes = ledger.get(entry.entry_id, (0, 0))
                entry.counters.packets = packets
                entry.counters.bytes = nbytes

    # -- inspection (delegated to the shadow) ------------------------------

    @property
    def pipeline(self) -> Pipeline:
        return self.shadow.pipeline

    @property
    def update_stats(self):
        return self.shadow.update_stats

    def table_kinds(self) -> dict[int, str]:
        return self.shadow.table_kinds()

    def __repr__(self) -> str:
        health = self.health()
        degraded = (
            f", degraded={health.degraded_shards}" if health.degraded else ""
        )
        return (
            f"ShardedESwitch(workers={self.workers}, backend={self.backend}, "
            f"epoch={self.epoch}, live={health.live_workers}{degraded})"
        )
