"""Tests for group tables across all three datapaths."""

import random
from collections import Counter

import pytest

from repro.core import ESwitch
from repro.openflow.actions import Output, SetField
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.groups import (
    Bucket,
    Group,
    GroupAction,
    GroupError,
    GroupTable,
    GroupType,
    flow_hash,
)
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline
from repro.ovs import OvsSwitch
from repro.packet import PacketBuilder


def tcp_pkt(sport):
    return (PacketBuilder(in_port=1).eth()
            .ipv4(src="10.0.0.1", dst="192.0.2.1")
            .tcp(src_port=sport, dst_port=80).build())


def ecmp_pipeline(groups: GroupTable):
    groups.add(Group(1, GroupType.SELECT,
                     [Bucket([Output(1)]), Bucket([Output(2)]),
                      Bucket([Output(3)])]))
    t = FlowTable(0)
    t.add(FlowEntry(Match(tcp_dst=80), priority=1,
                    actions=[GroupAction(groups, 1)]))
    t.add(FlowEntry(Match(), priority=0, actions=[]))
    return Pipeline([t])


class TestDefinitions:
    def test_indirect_needs_single_bucket(self):
        with pytest.raises(GroupError):
            Group(1, GroupType.INDIRECT, [Bucket([Output(1)]), Bucket([Output(2)])])

    def test_all_group_rejects_rewrites(self):
        with pytest.raises(GroupError):
            Group(1, GroupType.ALL, [Bucket([SetField("ipv4_dst", 1), Output(1)])])

    def test_needs_buckets(self):
        with pytest.raises(GroupError):
            Group(1, GroupType.SELECT, [])

    def test_bad_weight(self):
        with pytest.raises(GroupError):
            Bucket([Output(1)], weight=0)

    def test_dangling_reference(self):
        groups = GroupTable()
        action = GroupAction(groups, 42)
        from repro.openflow.pipeline import Verdict
        from repro.packet.parser import parse

        with pytest.raises(GroupError):
            action.apply(parse(tcp_pkt(1)), Verdict())

    def test_table_crud(self):
        groups = GroupTable()
        groups.add(Group(1, GroupType.INDIRECT, [Bucket([Output(1)])]))
        assert 1 in groups and len(groups) == 1
        assert groups.remove(1)
        assert not groups.remove(1)


class TestSelectSemantics:
    def test_deterministic_per_flow(self):
        groups = GroupTable()
        pipeline = ecmp_pipeline(groups)
        pkt = tcp_pkt(1234)
        first = pipeline.process(pkt.copy()).output_ports
        for _ in range(5):
            assert pipeline.process(pkt.copy()).output_ports == first

    def test_spreads_across_buckets(self):
        groups = GroupTable()
        pipeline = ecmp_pipeline(groups)
        counts = Counter()
        for sport in range(1024, 1624):
            (port,) = pipeline.process(tcp_pkt(sport)).output_ports
            counts[port] += 1
        assert set(counts) == {1, 2, 3}
        assert min(counts.values()) > 600 * 0.15  # no starved bucket

    def test_weights_respected(self):
        groups = GroupTable()
        groups.add(Group(1, GroupType.SELECT,
                         [Bucket([Output(1)], weight=9),
                          Bucket([Output(2)], weight=1)]))
        t = FlowTable(0)
        t.add(FlowEntry(Match(), priority=1, actions=[GroupAction(groups, 1)]))
        pipeline = Pipeline([t])
        counts = Counter()
        for sport in range(1024, 2024):
            (port,) = pipeline.process(tcp_pkt(sport)).output_ports
            counts[port] += 1
        assert counts[1] > counts[2] * 4

    def test_flow_hash_uses_l3_l4(self):
        from repro.packet.parser import parse

        a = flow_hash(parse(tcp_pkt(1000)))
        b = flow_hash(parse(tcp_pkt(1001)))
        assert a != b


class TestAllAndIndirect:
    def test_all_replicates(self):
        groups = GroupTable()
        groups.add(Group(7, GroupType.ALL,
                         [Bucket([Output(1)]), Bucket([Output(2)]),
                          Bucket([Output(3)])]))
        t = FlowTable(0)
        t.add(FlowEntry(Match(), priority=1, actions=[GroupAction(groups, 7)]))
        verdict = Pipeline([t]).process(tcp_pkt(1))
        assert sorted(verdict.output_ports) == [1, 2, 3]

    def test_indirect_retargets_without_flow_mod(self):
        groups = GroupTable()
        groups.add(Group(5, GroupType.INDIRECT, [Bucket([Output(1)])]))
        t = FlowTable(0)
        t.add(FlowEntry(Match(), priority=1, actions=[GroupAction(groups, 5)]))
        sw = ESwitch.from_pipeline(Pipeline([t]))
        assert sw.process(tcp_pkt(1).copy()).output_ports == [1]
        fn_before = sw.compiled_table(0).fn
        # Re-point the group: no flow-mod, no recompile, new behavior.
        groups.add(Group(5, GroupType.INDIRECT, [Bucket([Output(9)])]))
        assert sw.process(tcp_pkt(1).copy()).output_ports == [9]
        assert sw.compiled_table(0).fn is fn_before


class TestAcrossDatapaths:
    def test_differential_with_groups(self):
        groups_es, groups_ovs, groups_ref = GroupTable(), GroupTable(), GroupTable()
        es = ESwitch.from_pipeline(ecmp_pipeline(groups_es))
        ovs = OvsSwitch(ecmp_pipeline(groups_ovs))
        ref = ecmp_pipeline(groups_ref)
        rng = random.Random(3)
        for _ in range(120):
            pkt = tcp_pkt(rng.randrange(1024, 60000))
            expected = ref.process(pkt.copy()).summary()
            assert es.process(pkt.copy()).summary() == expected
            assert ovs.process(pkt.copy()).summary() == expected

    def test_group_update_visible_through_ovs_cache(self):
        groups = GroupTable()
        ovs = OvsSwitch(ecmp_pipeline(groups))
        pkt = tcp_pkt(5000)
        first = ovs.process(pkt.copy()).output_ports
        ovs.process(pkt.copy())  # now cached in the EMC
        assert ovs.stats.microflow_hits >= 1
        groups.add(Group(1, GroupType.SELECT, [Bucket([Output(42)])]))
        # The cached action program resolves the group at replay time.
        assert ovs.process(pkt.copy()).output_ports == [42]

    def test_group_stats(self):
        groups = GroupTable()
        pipeline = ecmp_pipeline(groups)
        for sport in range(100):
            pipeline.process(tcp_pkt(1024 + sport))
        assert groups.get(1).packets == 100


class TestParserDepthRegression:
    def test_l3_pipeline_with_select_group_parses_l4(self):
        """Regression: an LPM-only pipeline pointing at a SELECT group must
        still parse L4, or the bucket hash sees no port fields and
        diverges from the reference interpreter."""
        from repro.usecases.l3 import synthetic_fib
        from repro.net.addresses import int_to_ip

        groups = GroupTable()
        groups.add(Group(1, GroupType.SELECT,
                         [Bucket([Output(p)]) for p in (1, 2, 3)]))
        rib = FlowTable(0)
        for value, depth, _h in synthetic_fib(60, seed=5):
            rib.add(FlowEntry(Match(ipv4_dst=f"{int_to_ip(value)}/{depth}"),
                              priority=depth, actions=[GroupAction(groups, 1)]))
        rib.add(FlowEntry(Match(), priority=0, actions=[]))
        pipeline = Pipeline([rib])
        sw = ESwitch.from_pipeline(pipeline)
        assert sw.datapath.parser_layer == 4

        from repro.usecases import l3

        flows = l3.traffic(synthetic_fib(60, seed=5), 200)
        for i in range(len(flows)):
            pkt = flows[i]
            assert (sw.process(pkt.copy()).summary()
                    == pipeline.process(pkt.copy()).summary()), i
