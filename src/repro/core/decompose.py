"""Flow table decomposition — the DECOMPOSE(T) heuristic of Fig. 6.

Rewrites one "difficult" flow table into a semantically equivalent
multi-table pipeline in which every table matches on a single column, so
each lands a fast template (typically the compound hash) instead of the
linked list. The algorithm greedily decomposes along the column of minimal
diversity — the column producing the fewest subtables — and recurses.

The exact problem (minimal number of regular tables) is coNP-hard
(Appendix; see :mod:`repro.theory.regdecomp`), hence the heuristic
"focusing on speed instead of efficiency".

Prerequisite (the paper's simplified setting, extended to masked keys):
within each column, every non-wildcard rule must use the *same* mask, so
the distinct keys of a column are mutually disjoint. Tables violating this
are left alone (``decompose_table`` returns None) and take the linked-list
template.

The resulting decision tree is "organized similarly to the set-pruning trie
and HyperCuts but doing matching field-wise and with a greedily optimized
matching order" (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable, TableMissPolicy
from repro.openflow.instructions import GotoTable
from repro.openflow.match import Match


@dataclass(eq=False)
class _Row:
    """One original rule, restricted to its not-yet-dispatched columns."""

    constraints: dict[str, tuple[int, int]]  # field -> (value, mask)
    original: FlowEntry


class _IdAllocator:
    """Fresh internal table ids; decomposition is not bound by OpenFlow's
    255-table limit (Section 3.2)."""

    def __init__(self, start: int):
        self._next = start

    def take(self) -> int:
        value = self._next
        self._next += 1
        return value


def decomposable(table: FlowTable) -> bool:
    """True when every column uses a single mask across all its rules."""
    if len(table.matched_fields()) < 2:
        return False
    masks: dict[str, int] = {}
    for entry in table:
        for name, (_value, mask) in entry.match.items():
            if masks.setdefault(name, mask) != mask:
                return False
    return True


def decompose_table(
    table: FlowTable,
    fresh_ids_from: int,
    force_first_column: "str | None" = None,
    dedup: bool = False,
) -> "list[FlowTable] | None":
    """Decompose ``table`` into single-column tables.

    Returns the replacement tables — the first one reuses ``table``'s id —
    or None when the table does not satisfy the uniform-mask prerequisite.

    Args:
        fresh_ids_from: first id available for internal tables.
        force_first_column: override the greedy choice at the root (used to
            reproduce Fig. 5's suboptimal ip-first decomposition).
        dedup: share structurally identical subtables (an optimization the
            paper's algorithm does not perform; exposed for ablation).
    """
    if not decomposable(table):
        return None
    rows = [
        _Row(constraints=dict(entry.match.items()), original=entry) for entry in table
    ]
    ids = _IdAllocator(fresh_ids_from)
    out: list[FlowTable] = []
    cache: dict[tuple, int] = {}
    _decompose(
        rows,
        table.table_id,
        table.miss_policy,
        ids,
        out,
        cache if dedup else None,
        force_first_column,
    )
    return out


def _signature(rows: list[_Row]) -> tuple:
    """Structural identity of a subproblem, for deduplication."""
    return tuple(
        (tuple(sorted(row.constraints.items())), id(row.original)) for row in rows
    )


def _decompose(
    rows: list[_Row],
    table_id: int,
    miss_policy: TableMissPolicy,
    ids: _IdAllocator,
    out: list[FlowTable],
    cache: "dict[tuple, int] | None",
    force_column: "str | None" = None,
) -> int:
    """Emit tables for ``rows``; returns the id of the emitted root table."""
    if cache is not None:
        sig = _signature(rows)
        hit = cache.get(sig)
        if hit is not None:
            return hit
        cache[sig] = table_id

    columns = sorted({name for row in rows for name in row.constraints})
    if len(columns) <= 1:
        out.append(_emit_regular(rows, table_id, miss_policy))
        return table_id

    # Step (1)-(2): distinct keys per column; pick minimal diversity, where
    # diversity counts the subtables produced (distinct keys + wildcard).
    def diversity(name: str) -> int:
        keys = {row.constraints[name] for row in rows if name in row.constraints}
        has_wildcard = any(name not in row.constraints for row in rows)
        return len(keys) + (1 if has_wildcard else 0)

    if force_column is not None:
        if force_column not in columns:
            raise ValueError(f"column {force_column!r} not matched by the table")
        p = force_column
    else:
        p = min(columns, key=lambda name: (diversity(name), name))

    # Step (3)-(4): partition rows along column p, preserving order.
    keys: list[tuple[int, int]] = []
    partitions: dict[tuple[int, int], list[_Row]] = {}
    wildcard_rows: list[_Row] = []
    for row in rows:
        constraint = row.constraints.get(p)
        if constraint is None:
            wildcard_rows.append(row)
            for key in keys:
                partitions[key].append(_strip(row, p))
        else:
            if constraint not in partitions:
                keys.append(constraint)
                # Wildcard rows seen so far cover this new key too.
                partitions[constraint] = [_strip(w, p) for w in wildcard_rows]
            partitions[constraint].append(_strip(row, p))

    dispatch = FlowTable(table_id, miss_policy=miss_policy)
    n = len(keys) + 1
    for i, key in enumerate(keys):
        value, key_mask = key
        child_rows = partitions[key]
        child_id = ids.take()
        actual_child = _decompose(child_rows, child_id, miss_policy, ids, out, cache)
        dispatch.add(
            FlowEntry(
                Match.from_pairs({p: (value, key_mask)}),
                priority=n - i,
                instructions=(GotoTable(actual_child),),
            )
        )
    if wildcard_rows:
        child_id = ids.take()
        stripped = [_strip(w, p) for w in wildcard_rows]
        actual_child = _decompose(stripped, child_id, miss_policy, ids, out, cache)
        dispatch.add(
            FlowEntry(Match(), priority=0, instructions=(GotoTable(actual_child),))
        )
    out.append(dispatch)
    return table_id


def _strip(row: _Row, column: str) -> _Row:
    remaining = {k: v for k, v in row.constraints.items() if k != column}
    return _Row(constraints=remaining, original=row.original)


def _emit_regular(
    rows: list[_Row], table_id: int, miss_policy: TableMissPolicy
) -> FlowTable:
    """A leaf: at most one matched column; rows keep their original
    instructions (actions and external goto_table jumps)."""
    table = FlowTable(table_id, miss_policy=miss_policy)
    n = len(rows)
    for i, row in enumerate(rows):
        leaf = FlowEntry(
            Match.from_pairs(row.constraints),
            priority=n - i,
            instructions=row.original.instructions,
        )
        # The leaf *is* the original rule, restricted to the columns not
        # yet dispatched on: statistics must land on the logical entry
        # (a packet matching here matched that rule), so the counters
        # object is shared, not copied, and ``origin`` lets the shard
        # wire format resolve this compile artifact back to
        # control-plane-visible identity.
        leaf.origin = row.original
        leaf.counters = row.original.counters
        table.add(leaf)
    return table
