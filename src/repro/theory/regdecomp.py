"""REGDECOMP and its 3SAT reduction — the paper's Appendix, executable.

The Appendix proves that deciding whether a flow table admits a
semantically equivalent pipeline of at most ``k`` *regular* tables (single
field, no masks except a final catch-all) is coNP-hard, by reducing 3SAT:
given a CNF formula, build a table with one column per variable plus an
extra column ``Y``; the formula is unsatisfiable **iff** the table is
equivalent to the single regular table ``{Y=1 -> false, Y=0 -> true}``.

This module implements the construction over abstract tables (rows of
``0``/``1``/``*`` cells) and the brute-force oracles needed to *verify*
the reduction on small instances — which the test suite does, clause by
clause: ``single_regular_equivalent(reduction_table(f)) ==
not brute_force_satisfiable(f)``.

A CNF formula is a list of clauses; a clause is a tuple of non-zero signed
integers (DIMACS convention: ``3`` means x3, ``-3`` means ¬x3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

Clause = tuple[int, ...]
Cnf = Sequence[Clause]

WILDCARD = "*"


@dataclass
class AbstractTable:
    """Rows of per-column cells (0, 1, or '*') mapping to boolean actions."""

    n_columns: int
    rows: list[tuple[tuple[object, ...], bool]]  # (cells, action), priority order

    def __post_init__(self) -> None:
        for cells, _action in self.rows:
            if len(cells) != self.n_columns:
                raise ValueError("row width does not match column count")
            for cell in cells:
                if cell not in (0, 1, WILDCARD):
                    raise ValueError(f"invalid cell {cell!r}")


def evaluate(table: AbstractTable, assignment: Sequence[int]) -> bool:
    """First-match evaluation of the table on a 0/1 input vector."""
    if len(assignment) != table.n_columns:
        raise ValueError("assignment width does not match column count")
    for cells, action in table.rows:
        if all(c == WILDCARD or c == v for c, v in zip(cells, assignment)):
            return action
    raise ValueError("table has no catch-all; input unmatched")


def is_regular(table: AbstractTable) -> bool:
    """Single constrained column, no wildcards except a final catch-all."""
    constrained: set[int] = set()
    for i, (cells, _action) in enumerate(table.rows):
        non_wild = [j for j, c in enumerate(cells) if c != WILDCARD]
        if not non_wild:
            if i != len(table.rows) - 1:
                return False  # catch-all must be last
            continue
        if len(non_wild) != 1:
            return False
        constrained.add(non_wild[0])
    return len(constrained) <= 1


def reduction_table(cnf: Cnf, n_vars: int) -> AbstractTable:
    """The Appendix's construction: columns X1..Xn plus Y.

    Row i encodes clause i: ``0`` where the variable appears positively,
    ``1`` where negated, ``*`` where absent; Y is pinned to 1; action
    ``false``. A final catch-all returns ``true``. With Y=1 the table
    computes f(X): row i matches — yielding false — iff clause i is
    unsatisfied by X.
    """
    rows: list[tuple[tuple[object, ...], bool]] = []
    for clause in cnf:
        cells: list[object] = [WILDCARD] * n_vars + [1]
        for literal in clause:
            var = abs(literal) - 1
            if not 0 <= var < n_vars:
                raise ValueError(f"literal {literal} out of range")
            cells[var] = 0 if literal > 0 else 1
        rows.append((tuple(cells), False))
    rows.append((tuple([WILDCARD] * (n_vars + 1)), True))
    return AbstractTable(n_columns=n_vars + 1, rows=rows)


def target_regular_table(n_vars: int) -> AbstractTable:
    """The single regular table ``{Y=1 -> false, * -> true}``."""
    y_one: list[object] = [WILDCARD] * n_vars + [1]
    catch: list[object] = [WILDCARD] * (n_vars + 1)
    return AbstractTable(
        n_columns=n_vars + 1,
        rows=[(tuple(y_one), False), (tuple(catch), True)],
    )


def brute_force_satisfiable(cnf: Cnf, n_vars: int) -> bool:
    """Exhaustive SAT check (exponential; for verifying the reduction)."""
    for bits in itertools.product((0, 1), repeat=n_vars):
        if all(
            any((bits[abs(l) - 1] == 1) == (l > 0) for l in clause) for clause in cnf
        ):
            return True
    return False


def single_regular_equivalent(table: AbstractTable, n_vars: int) -> bool:
    """Is ``table`` equivalent to the target regular table? (brute force)

    Per the Appendix this holds iff the encoded 3SAT instance is
    unsatisfiable: the table must return false for Y=1 *independently of X*.
    """
    target = target_regular_table(n_vars)
    for bits in itertools.product((0, 1), repeat=n_vars + 1):
        if evaluate(table, bits) != evaluate(target, bits):
            return False
    return True
