#!/usr/bin/env python3
"""ECMP with OpenFlow SELECT groups — live re-steering without flow-mods.

Builds a router whose routes all point at one SELECT group spreading
traffic over four next hops, runs flows through the compiled ESWITCH
datapath and the OVS baseline, then drains one next hop by rewriting the
group's buckets. Because group buckets resolve at execution time, the
change takes effect instantly on every datapath — no flow-mod, no
recompilation, no cache invalidation.

Run:  python examples/ecmp_groups.py
"""

from collections import Counter

from repro.core import ESwitch
from repro.openflow import (
    Bucket,
    FlowEntry,
    FlowTable,
    Group,
    GroupAction,
    GroupType,
    Match,
    Output,
    Pipeline,
)
from repro.ovs import OvsSwitch
from repro.usecases.l3 import synthetic_fib
from repro.net.addresses import int_to_ip

NEXT_HOPS = (1, 2, 3, 4)
GROUP_ID = 1


def build() -> Pipeline:
    pipeline = Pipeline()
    pipeline.groups.add(
        Group(GROUP_ID, GroupType.SELECT,
              [Bucket([Output(port)]) for port in NEXT_HOPS])
    )
    rib = FlowTable(0, name="rib")
    for value, depth, _hop in synthetic_fib(500, seed=3):
        rib.add(FlowEntry(Match(ipv4_dst=f"{int_to_ip(value)}/{depth}"),
                          priority=depth,
                          actions=[GroupAction(pipeline.groups, GROUP_ID)]))
    rib.add(FlowEntry(Match(), priority=0, actions=[]))
    pipeline.add_table(rib)
    return pipeline


def spread(switch, flows) -> Counter:
    counts: Counter = Counter()
    for pkt in flows:
        verdict = switch.process(pkt.copy())
        for port in verdict.output_ports:
            counts[port] += 1
    return counts


def main() -> None:
    from repro.usecases import l3

    pipeline = build()
    es = ESwitch.from_pipeline(pipeline)
    ovs_pipeline = build()
    ovs = OvsSwitch(ovs_pipeline)

    fib = synthetic_fib(500, seed=3)
    flow_set = l3.traffic(fib, 2_000)
    flows = [flow_set[i] for i in range(len(flow_set))]

    print("=== compilation ===")
    print(f"ESWITCH table kinds: {es.table_kinds()}  "
          f"(500 routes -> LPM, all pointing at group {GROUP_ID})")

    print("\n=== baseline spread over next hops ===")
    print(f"ESWITCH: {dict(sorted(spread(es, flows).items()))}")
    print(f"OVS:     {dict(sorted(spread(ovs, flows).items()))}")

    # Drain next hop 4 (maintenance): rewrite the group, nothing else.
    for groups in (pipeline.groups, ovs_pipeline.groups):
        groups.add(Group(GROUP_ID, GroupType.SELECT,
                         [Bucket([Output(p)]) for p in NEXT_HOPS[:-1]]))
    print("\n=== after draining next hop 4 (group rewrite only) ===")
    es_counts = spread(es, flows)
    ovs_counts = spread(ovs, flows)
    print(f"ESWITCH: {dict(sorted(es_counts.items()))}")
    print(f"OVS:     {dict(sorted(ovs_counts.items()))}")
    assert 4 not in es_counts and 4 not in ovs_counts
    print("\nno flow-mod was issued: the compiled datapath and every cached")
    print("megaflow resolved the new buckets at execution time.")
    print(f"(ESWITCH update engine stats, untouched: {es.update_stats})")


if __name__ == "__main__":
    main()
