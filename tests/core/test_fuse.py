"""Tests for whole-pipeline fusion (repro.core.fuse).

The contract under test is the one the module banner promises: the fused
driver is an *optimization*, never a semantic — verdicts are identical to
the trampoline's and modeled cycles are **bit-identical**, across random
pipelines, mid-stream flow-mods (which force a lazy re-fuse), and
transactional rollback.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import strategies as sts

from repro.core import CompileConfig, ESwitch
from repro.core.datapath import CompiledDatapath
from repro.core.fuse import FuseError, fuse_datapath
from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.instructions import ApplyActions
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.pipeline import Pipeline
from repro.packet import PacketBuilder
from repro.simcpu.platform import XEON_E5_2620
from repro.simcpu.recorder import CycleMeter
from repro.usecases import gateway, l2


FUSED = CompileConfig(fuse=True)
TRAMPOLINE = CompileConfig(fuse=False)


def _pair(pipeline):
    """(fused switch, trampoline switch) over the same logical pipeline."""
    return (
        ESwitch.from_pipeline(pipeline, config=FUSED),
        ESwitch.from_pipeline(pipeline, config=TRAMPOLINE),
    )


def _run_metered(sw, pkts):
    """Verdict summaries + exact modeled cycles for a packet sequence."""
    meter = CycleMeter(XEON_E5_2620)
    summaries = []
    for pkt in pkts:
        meter.begin_packet()
        summaries.append(sw.process(pkt.copy(), meter).summary())
        meter.end_packet()
    return summaries, meter.total_cycles


class TestParity:
    """Fused ≡ trampoline: verdicts and bit-identical modeled cycles."""

    @settings(max_examples=60, deadline=None)
    @given(sts.pipelines(), st.lists(sts.packets(), min_size=1, max_size=6))
    def test_verdicts_and_cycles_match(self, pipeline, pkts):
        sw_f, sw_t = _pair(pipeline)
        got_f, cycles_f = _run_metered(sw_f, pkts)
        got_t, cycles_t = _run_metered(sw_t, pkts)
        assert got_f == got_t
        assert cycles_f == cycles_t  # exact, not approx: the model may not drift
        # The parity must come from the fused driver actually running.
        assert sw_f.datapath.fused is not None
        assert sw_t.datapath.fused is None

    @settings(max_examples=40, deadline=None)
    @given(sts.pipelines(), st.lists(sts.packets(), min_size=1, max_size=8))
    def test_null_meter_verdicts_match(self, pipeline, pkts):
        sw_f, sw_t = _pair(pipeline)
        got_f = [sw_f.process(pkt.copy()).summary() for pkt in pkts]
        got_t = [sw_t.process(pkt.copy()).summary() for pkt in pkts]
        assert got_f == got_t

    @settings(max_examples=30, deadline=None)
    @given(sts.pipelines(), st.lists(sts.packets(), min_size=1, max_size=8))
    def test_burst_parity(self, pipeline, pkts):
        sw_f, sw_t = _pair(pipeline)
        meter_f = CycleMeter(XEON_E5_2620)
        meter_t = CycleMeter(XEON_E5_2620)
        got_f = [
            v.summary()
            for v in sw_f.process_burst([p.copy() for p in pkts], meter_f)
        ]
        got_t = [
            v.summary()
            for v in sw_t.process_burst([p.copy() for p in pkts], meter_t)
        ]
        assert got_f == got_t
        assert meter_f.total_cycles == meter_t.total_cycles

    def test_gateway_packet_rewrites_match(self):
        """Fusion must also leave identical bytes on the wire."""
        p1, fib = gateway.build(n_ce=2, users_per_ce=4, n_prefixes=64)
        p2, _ = gateway.build(n_ce=2, users_per_ce=4, n_prefixes=64)
        sw_f = ESwitch.from_pipeline(p1, config=FUSED)
        sw_t = ESwitch.from_pipeline(p2, config=TRAMPOLINE)
        for base in gateway.traffic(fib, 64, n_ce=2, users_per_ce=4):
            a, b = base.copy(), base.copy()
            assert sw_f.process(a).summary() == sw_t.process(b).summary()
            assert a.data == b.data


class TestFlowModsAndRollback:
    """Re-fuse after updates; rollback leaves a consistent fused driver."""

    def _gateway_pair(self):
        p1, fib = gateway.build(n_ce=2, users_per_ce=2, n_prefixes=32)
        p2, _ = gateway.build(n_ce=2, users_per_ce=2, n_prefixes=32)
        sw_f = ESwitch.from_pipeline(p1, config=FUSED)
        sw_t = ESwitch.from_pipeline(p2, config=TRAMPOLINE)
        pkts = gateway.traffic(fib, 48, n_ce=2, users_per_ce=2)
        return sw_f, sw_t, pkts

    def _assert_parity(self, sw_f, sw_t, pkts):
        got_f, cycles_f = _run_metered(sw_f, pkts)
        got_t, cycles_t = _run_metered(sw_t, pkts)
        assert got_f == got_t
        assert cycles_f == cycles_t

    def test_mid_stream_flow_mods_refuse(self):
        sw_f, sw_t, pkts = self._gateway_pair()
        self._assert_parity(sw_f, sw_t, pkts)
        gen_before = sw_f.datapath.fused.generation
        # Admit a user that build() did not provision: both tables mutate
        # (one incrementally, in place), so the fused driver must be
        # invalidated and rebuilt before the next packet.
        for mod in gateway.nat_flow_mods(ce=1, user=3):
            sw_f.apply_flow_mod(mod)
            sw_t.apply_flow_mod(mod)
        assert sw_f.datapath.generation > gen_before
        self._assert_parity(sw_f, sw_t, pkts)
        assert sw_f.datapath.fused.generation > gen_before

    def test_flow_mod_between_bursts(self):
        """The lazy re-fuse happens off the update path, on the next packet."""
        sw_f, sw_t, pkts = self._gateway_pair()
        batch = [p.copy() for p in pkts[:16]]
        assert [v.summary() for v in sw_f.process_burst(batch)] == [
            v.summary() for v in sw_t.process_burst([p.copy() for p in pkts[:16]])
        ]
        for mod in gateway.nat_flow_mods(ce=0, user=2):
            sw_f.apply_flow_mod(mod)
            sw_t.apply_flow_mod(mod)
        # No packet has run yet: the stale driver is still cached but no
        # longer matches the generation, so it must not be used.
        assert sw_f.datapath.fused.generation != sw_f.datapath.generation
        self._assert_parity(sw_f, sw_t, pkts)
        assert sw_f.datapath.fused.generation == sw_f.datapath.generation

    def test_transactional_rollback_keeps_parity(self):
        sw_f, sw_t, pkts = self._gateway_pair()
        self._assert_parity(sw_f, sw_t, pkts)
        good = gateway.nat_flow_mods(ce=0, user=3)
        bad = FlowMod(
            FlowModCommand.ADD,
            gateway.REVERSE_TABLE,
            Match(eth_dst=1),
            priority=-1,  # invalid: the batch must roll back atomically
        )
        for sw in (sw_f, sw_t):
            with pytest.raises(ValueError):
                sw.apply_flow_mods([*good, bad])
        self._assert_parity(sw_f, sw_t, pkts)
        # The rolled-back user must not have become reachable.
        probe = (
            PacketBuilder(in_port=gateway.NETWORK_PORT)
            .eth()
            .ipv4(dst=gateway.public_ip(0, 3))
            .tcp(dst_port=80)
            .build()
        )
        assert sw_f.process(probe.copy()).summary() == sw_t.process(
            probe.copy()
        ).summary()


class TestGenerationContract:
    """install/uninstall/set_parser_layer/bump_generation invalidate."""

    def _switch(self):
        p, _macs = l2.build(16)
        return ESwitch.from_pipeline(p, config=FUSED)

    def _pkt(self):
        return PacketBuilder().eth(dst=0x0200_0000_0001).ipv4().build()

    def test_lazy_fuse_on_first_packet(self):
        sw = self._switch()
        dp = sw.datapath
        assert dp.fused is None  # nothing fused before traffic
        sw.process(self._pkt())
        assert dp.fused is not None
        assert dp.fused.generation == dp.generation

    def test_fused_driver_cached_across_packets(self):
        sw = self._switch()
        sw.process(self._pkt())
        first = sw.datapath.fused
        sw.process(self._pkt())
        assert sw.datapath.fused is first

    def test_bump_generation_forces_refuse(self):
        sw = self._switch()
        sw.process(self._pkt())
        stale = sw.datapath.fused
        sw.datapath.bump_generation()
        sw.process(self._pkt())
        assert sw.datapath.fused is not stale

    def test_set_parser_layer_bumps(self):
        sw = self._switch()
        gen = sw.datapath.generation
        sw.datapath.set_parser_layer(4)
        assert sw.datapath.generation == gen + 1

    def test_install_uninstall_bump(self):
        dp = CompiledDatapath(first_table=0)
        gen = dp.generation
        table = FlowTable(0)
        table.add(
            FlowEntry(Match(), priority=1, instructions=(ApplyActions([Output(1)]),))
        )
        sw = ESwitch.from_pipeline(Pipeline([table]))
        compiled = sw.compiled_table(0)
        dp.install(compiled)
        assert dp.generation == gen + 1
        dp.uninstall(0)
        assert dp.generation == gen + 2

    def test_fusion_disabled_never_fuses(self):
        p, _macs = l2.build(16)
        sw = ESwitch.from_pipeline(p, config=TRAMPOLINE)
        for _ in range(3):
            sw.process(self._pkt())
        assert sw.datapath.fused is None

    def test_empty_datapath_fuse_fails_and_memoizes(self):
        dp = CompiledDatapath(first_table=0)
        with pytest.raises(FuseError):
            fuse_datapath(dp)
        # The lazy path memoizes the failure for this generation instead of
        # retrying the fuse on every packet.
        assert dp._fused_fresh() is None
        assert dp._fuse_failed_gen == dp.generation


class TestSpecialization:
    """The fused source really is specialized to the pipeline's facts."""

    def _fused_source(self, pipeline):
        sw = ESwitch.from_pipeline(pipeline, config=FUSED)
        sw.process(PacketBuilder().eth(dst=0x0200_0000_0001).ipv4().build())
        assert sw.datapath.fused is not None
        return sw, sw.datapath.fused.source

    def test_acyclic_pipeline_drops_hop_guard(self):
        p, _macs = l2.build(16)
        _, source = self._fused_source(p)
        assert "hops" not in source

    def test_machinery_elided_when_unreachable(self):
        """l2 outcomes carry no write-sets, metadata, or flow meters."""
        p, _macs = l2.build(16)
        _, source = self._fused_source(p)
        assert "write_set" not in source
        assert "metadata_write" not in source
        assert "out.meter" not in source

    def test_stock_etype_extractor_reads_cached_slot(self):
        p, _fib = gateway.build(n_ce=1, users_per_ce=1, n_prefixes=16)
        _, source = self._fused_source(p)
        assert "etype = view.eth_type" in source

    def test_null_variant_has_no_charges(self):
        p, _fib = gateway.build(n_ce=1, users_per_ce=1, n_prefixes=16)
        _, source = self._fused_source(p)
        null_part = source.split("def _run_n", 1)[1].split("def _process", 1)[0]
        assert "meter.charge" not in null_part
        assert "meter.touch" not in null_part

    def test_gateway_tables_inlined(self):
        """Hash and LPM templates inline; every gateway table qualifies."""
        p, _fib = gateway.build(n_ce=2, users_per_ce=2, n_prefixes=16)
        sw, _ = self._fused_source(p)
        fused = sw.datapath.fused
        assert set(fused.inlined_ids) == set(fused.table_ids)
