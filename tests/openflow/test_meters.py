"""Tests for meters across all three datapaths."""

import pytest

from repro.core import ESwitch
from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.instructions import ApplyActions
from repro.openflow.match import Match
from repro.openflow.meters import (
    Meter,
    MeterError,
    MeterInstruction,
    MeterTable,
    SimClock,
)
from repro.openflow.pipeline import Pipeline
from repro.ovs import OvsSwitch
from repro.packet import PacketBuilder


def metered_pipeline(rate_pps=10.0, burst=10.0):
    pipeline = Pipeline()
    pipeline.meters.add(1, rate_pps=rate_pps, burst=burst)
    t = FlowTable(0)
    t.add(FlowEntry(
        Match(tcp_dst=80), priority=10,
        instructions=(MeterInstruction(pipeline.meters, 1),
                      ApplyActions([Output(2)])),
    ))
    t.add(FlowEntry(Match(), priority=0, actions=[Output(9)]))
    pipeline.add_table(t)
    return pipeline


def http_pkt():
    return PacketBuilder(in_port=1).eth().ipv4().tcp(dst_port=80).build()


class TestMeterMechanics:
    def test_validation(self):
        with pytest.raises(MeterError):
            Meter(0, rate_pps=10)
        with pytest.raises(MeterError):
            Meter(1, rate_pps=0)
        with pytest.raises(MeterError):
            MeterTable().get(5)

    def test_clock_monotone(self):
        clock = SimClock()
        clock.advance(5)
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.set(1)

    def test_burst_then_throttle(self):
        clock = SimClock()
        meter = Meter(1, rate_pps=10, burst=5, clock=clock)
        assert sum(meter.allow() for _ in range(10)) == 5  # burst drained
        clock.advance(1.0)  # refills 10, capped at burst 5
        assert sum(meter.allow() for _ in range(10)) == 5
        assert meter.stats.packets_dropped == 10

    def test_steady_state_rate(self):
        clock = SimClock()
        meter = Meter(1, rate_pps=100, burst=1, clock=clock)
        passed = 0
        for _ in range(1000):  # one packet per ms for a second
            clock.advance(0.001)
            passed += meter.allow()
        assert 95 <= passed <= 105  # ~100 pps enforced


class TestDatapathEnforcement:
    @pytest.mark.parametrize("kind", ["es", "ovs", "ref"])
    def test_burst_enforced(self, kind):
        pipeline = metered_pipeline(rate_pps=5, burst=10)
        if kind == "es":
            switch = ESwitch.from_pipeline(pipeline)
        elif kind == "ovs":
            switch = OvsSwitch(pipeline)
        else:
            switch = pipeline
        forwarded = sum(
            switch.process(http_pkt()).forwarded for _ in range(30)
        )
        assert forwarded == 10  # burst, then drops (clock frozen)
        # Unmetered traffic is untouched.
        other = PacketBuilder(in_port=1).eth().ipv4().tcp(dst_port=22).build()
        assert switch.process(other).output_ports == [9]

    def test_refill_resumes_forwarding(self):
        pipeline = metered_pipeline(rate_pps=10, burst=2)
        switch = ESwitch.from_pipeline(pipeline)
        assert sum(switch.process(http_pkt()).forwarded for _ in range(5)) == 2
        pipeline.clock.advance(1.0)
        assert switch.process(http_pkt()).forwarded

    def test_rate_update_takes_effect_everywhere(self):
        """Re-adding a meter re-rates compiled and cached paths alike."""
        pipeline = metered_pipeline(rate_pps=10, burst=1)
        es = ESwitch.from_pipeline(pipeline)
        assert es.process(http_pkt()).forwarded      # token spent
        assert not es.process(http_pkt()).forwarded  # throttled
        pipeline.meters.add(1, rate_pps=10, burst=1000)  # replace: big burst
        assert es.process(http_pkt()).forwarded

    def test_ovs_cached_path_enforces_meter(self):
        pipeline = metered_pipeline(rate_pps=5, burst=3)
        ovs = OvsSwitch(pipeline)
        results = [ovs.process(http_pkt()).forwarded for _ in range(6)]
        assert results == [True, True, True, False, False, False]
        # The denials came from the cached path, not fresh upcalls —
        # denial during an upcall is not cached, so exactly the first
        # conforming packet plus one post-burst upcall... assert hits:
        assert ovs.stats.microflow_hits + ovs.stats.megaflow_hits >= 2

    def test_differential_under_metering(self):
        es = ESwitch.from_pipeline(metered_pipeline(rate_pps=7, burst=4))
        ovs = OvsSwitch(metered_pipeline(rate_pps=7, burst=4))
        ref = metered_pipeline(rate_pps=7, burst=4)
        for i in range(12):
            a = es.process(http_pkt()).summary()
            b = ovs.process(http_pkt()).summary()
            c = ref.process(http_pkt()).summary()
            assert a == b == c, i

    def test_meter_stats(self):
        pipeline = metered_pipeline(rate_pps=5, burst=2)
        switch = ESwitch.from_pipeline(pipeline)
        for _ in range(5):
            switch.process(http_pkt())
        stats = pipeline.meters.get(1).stats
        assert stats.packets_in == 5
        assert stats.packets_dropped == 3
