"""The million-flow rig as a benchmark: rungs, collapse, and churn.

Default sizes are smoke-level so the benchmark suite stays fast; CI's
scale-smoke leg sets ``MEGASCALE_FLOWS=100000`` (and a full 10⁶ run sets
``MEGASCALE_FLOWS=1000000``) to exercise the production-cardinality
regime the paper's Figs. 3/10/18 report. ``repro bench --megascale``
runs the same rig interactively.

Assertions here are *mechanism* checks, not absolute-speed checks — the
wall-clock numbers vary with the host, but the shape of the result must
not: every rung completes inside its time box, the direct rung degrades
to data-driven code instead of failing, churn on the hash/LPM rungs is
absorbed incrementally (no rebuild storm), and the OVS collapse leg
shows the microflow cache saturating once the axis passes its capacity.
"""

import json
import os

from figshared import RESULTS_DIR, publish, render_table
from repro.traffic.megascale import run_megascale

#: CI/operator override: run the same rig at production cardinality.
FLOWS = int(float(os.environ.get("MEGASCALE_FLOWS", "20000")))
RUNG_SECONDS = float(os.environ.get("MEGASCALE_RUNG_SECONDS", "8")) if (
    "MEGASCALE_FLOWS" in os.environ
) else 4.0


def test_megascale():
    doc = run_megascale(
        n_flows=FLOWS,
        n_packets=4_000,
        traffic_flows=4_096,
        # A wide mod window: at tens of thousands of mods/s a 2k-mod
        # leg finishes in ~0.06 s, short enough that one scheduler
        # hiccup halves the measured rate. 20k mods (~0.5-1 s, still
        # inside the rung time box) amortizes the noise; the box's
        # deadline caps it on slow hosts either way.
        churn_mods=20_000,
        rung_seconds=RUNG_SECONDS,
        collapse_axis=(1_024, 8_192, 32_768, 131_072, 1_048_576),
    )

    rows = [
        (
            p["rung"],
            f"{p['wall_pps']:,.0f}",
            str(p["packets"]),
            f"{p['footprint_bytes'] / 1e6:.1f}",
            ",".join(sorted(set(p["table_kinds"].values())))
            + (" (data-driven)" if p["data_driven"] else ""),
        )
        for p in doc["rungs"]
    ]
    publish(
        "megascale",
        render_table(
            f"Template rungs at {FLOWS:,} entries (time-boxed wall clock)",
            ("rung", "wall pps", "packets", "MB", "templates"),
            rows,
        ),
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_megascale.json"), "w") as fh:
        json.dump(doc, fh, indent=2)

    by_rung = {p["rung"]: p for p in doc["rungs"]}
    assert set(by_rung) == {"hash", "lpm", "direct"}

    # Every rung completed: measured at least one burst inside the box.
    for p in doc["rungs"]:
        assert p["packets"] > 0, p["rung"]
        assert p["wall_pps"] > 0, p["rung"]
        assert p["footprint_bytes"] > 0, p["rung"]

    # The rungs landed on their intended templates, and the direct rung
    # degraded to the data-driven variant instead of inlining FLOWS keys.
    assert "hash" in by_rung["hash"]["table_kinds"].values()
    assert "lpm" in by_rung["lpm"]["table_kinds"].values()
    assert "direct" in by_rung["direct"]["table_kinds"].values()
    assert by_rung["direct"]["data_driven"], (
        "the direct rung at scale must take the source-budget fallback"
    )

    # Churn mechanism: hash and LPM absorb every mod incrementally —
    # zero rebuilds, and the shape-stability proof skipped every O(n)
    # template re-selection.
    churn = {p["rung"]: p for p in doc["churn"]}
    for rung in ("hash", "lpm"):
        p = churn[rung]
        assert p["mods_applied"] > 0, rung
        assert p["rebuilds"] == 0, (rung, p)
        assert p["incremental"] == p["mods_applied"], (rung, p)
        assert p["kind_stable_skips"] == p["mods_applied"], (rung, p)
        assert p["modeled_entries_per_sec"] > 1e6, (rung, p)

    # The churn wall itself: sustained *wall-clock* mods/s on the
    # specialized rungs. The sorted-list store managed ~1-2k mods/s at
    # 10⁵ entries (every delete an O(n) memmove, every mod an O(n)
    # index rebuild); the tombstone store sustains tens of thousands.
    # Asserted on the best complete timing window (shared-host noise is
    # one-sided — see _run_churn); env-tunable, 0 disables.
    churn_floor = float(os.environ.get("MEGASCALE_CHURN_FLOOR", "20000"))
    for rung in ("hash", "lpm"):
        assert churn[rung]["entries_per_sec_best"] >= churn_floor, (
            rung, churn_floor, churn[rung]
        )

    # Fig. 3 mechanism: inside EMC capacity the microflow cache serves
    # ~everything; past it (axis points above 8192, when FLOWS affords
    # them) the hit rate collapses while the fused rate stays flat.
    ovs_points = {p["flows"]: p for p in doc["collapse"] if p["variant"] == "ovs"}
    fused_points = {
        p["flows"]: p for p in doc["collapse"] if p["variant"] == "fused"
    }
    smallest = min(ovs_points)
    assert ovs_points[smallest]["cache_rates"]["microflow"] > 0.95
    beyond = [f for f in ovs_points if f > 8_192]
    for f in beyond:
        assert ovs_points[f]["cache_rates"]["microflow"] < 0.5, (
            f,
            ovs_points[f]["cache_rates"],
        )
        # The specialized datapath has no cache to thrash.
        assert (
            fused_points[f]["modeled_pps"]
            > 0.8 * fused_points[smallest]["modeled_pps"]
        ), f
