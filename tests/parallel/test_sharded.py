"""ShardedESwitch ≡ ESwitch: the shard count must be unobservable.

The contract under test (ISSUE 3): for ANY worker count, the sharded
engine yields bit-identical verdicts, modeled cycles, merged burst
telemetry, and flow counters versus a single sequential :class:`ESwitch`
over the same bursts — including when flow-mod broadcasts land between
bursts on an epoch boundary. Thread backend does the heavy property
lifting (cheap to spawn, identical code path — channels pickle both
ways, so thread workers are equally shared-nothing); one integration
test exercises the real forked-process backend end to end.
"""

import math
import pickle

import pytest
from hypothesis import given, settings, strategies as st

import strategies as sts

from repro.core import ESwitch
from repro.openflow.actions import Output
from repro.openflow.instructions import ApplyActions
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.stats import BurstStats, collect_flow_stats
from repro.parallel import ShardedESwitch, ShardWorkerError, shard_of
from repro.simcpu.platform import XEON_E5_2620
from repro.simcpu.recorder import CycleMeter
from repro.usecases import gateway, l2


def summarize(verdicts, pipeline):
    """Verdicts as comparable values: entry refs become logical positions.

    Synthetic decomposition *leaf* entries resolve through ``origin`` to
    the logical rule they stand in for — exactly how the wire encodes
    them; dispatch entries (no logical identity) summarize as None.
    """
    pos = {}
    for table in pipeline:
        for i, entry in enumerate(table.entries):
            pos[id(entry)] = i

    def resolve(e):
        if e is None:
            return None
        if e.origin is not None:
            e = e.origin
        return pos.get(id(e))

    return [
        (
            tuple(v.output_ports),
            v.dropped,
            v.to_controller,
            v.table_miss,
            tuple((tid, resolve(e)) for tid, e in v.path),
        )
        for v in verdicts
    ]


def flow_counts(pipeline):
    return sorted(
        (s.table_id, s.priority, s.packets, s.bytes)
        for s in collect_flow_stats(pipeline)
    )


def add_mod(table_id=0, priority=5, port=3, **match):
    return FlowMod(
        FlowModCommand.ADD,
        table_id,
        Match(**match),
        priority=priority,
        instructions=(ApplyActions([Output(port)]),),
    )


class TestShardSequentialEquivalence:
    """The property at the heart of the engine."""

    @settings(max_examples=15, deadline=None)
    @given(
        pipeline=sts.pipelines(),
        workers=st.integers(1, 8),
        data=st.data(),
    )
    def test_any_worker_count_is_unobservable(self, pipeline, workers, data):
        n_bursts = data.draw(st.integers(1, 3))
        bursts = [
            [data.draw(sts.packets()) for _ in range(data.draw(st.integers(1, 12)))]
            for _ in range(n_bursts)
        ]
        seq = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        with ShardedESwitch(pipeline, workers=workers, backend="thread") as eng:
            for pkts in bursts:
                seq_meter, eng_meter = CycleMeter(XEON_E5_2620), CycleMeter(XEON_E5_2620)
                sv = seq.process_burst([p.copy() for p in pkts], seq_meter)
                ev = eng.process_burst([p.copy() for p in pkts], eng_meter)
                assert summarize(ev, eng.pipeline) == summarize(sv, seq.pipeline)
                # Each gather is whole: every shard answered at the engine epoch.
                assert all(e == eng.epoch for e in eng.last_gather_epochs)
            eng.sync_flow_stats()
            assert flow_counts(eng.pipeline) == flow_counts(seq.pipeline)
            merged = eng.merged_burst_stats()
            assert merged.packets == sum(len(b) for b in bursts)
            assert eng.burst_stats.bursts == n_bursts

    @settings(max_examples=10, deadline=None)
    @given(pipeline=sts.pipelines(), data=st.data())
    def test_single_worker_cycles_bit_identical(self, pipeline, data):
        pkts = [data.draw(sts.packets()) for _ in range(data.draw(st.integers(1, 16)))]
        seq = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        seq_meter, eng_meter = CycleMeter(XEON_E5_2620), CycleMeter(XEON_E5_2620)
        seq.process_burst([p.copy() for p in pkts], seq_meter)
        with ShardedESwitch(pipeline, workers=1, backend="thread") as eng:
            eng.process_burst([p.copy() for p in pkts], eng_meter)
        assert eng_meter.total_cycles == seq_meter.total_cycles  # bit-exact

    def test_multiworker_cycles_equal_per_shard_replays(self):
        """The modeled total is exactly the fsum of per-core sequential runs."""
        pipeline, macs = l2.build(32)
        flows = l2.traffic(macs, 48)
        bursts = [[flows[i + 16 * b] for i in range(16)] for b in range(3)]
        workers = 3
        eng_meter = CycleMeter(XEON_E5_2620)
        with ShardedESwitch(pipeline, workers=workers, backend="thread") as eng:
            for pkts in bursts:
                eng.process_burst([p.copy() for p in pkts], eng_meter)
        replicas = [ESwitch(pickle.loads(pickle.dumps(pipeline))) for _ in range(workers)]
        meters = [CycleMeter(XEON_E5_2620) for _ in range(workers)]
        for pkts in bursts:
            lanes = [[] for _ in range(workers)]
            for pkt in pkts:
                lanes[shard_of(pkt.data, workers)].append(pkt.copy())
            for replica, meter, lane in zip(replicas, meters, lanes):
                if lane:
                    replica.process_burst(lane, meter)
        expected = math.fsum(m.total_cycles for m in meters)
        assert eng_meter.total_cycles == expected  # bit-exact


class TestEpochSync:
    """Flow-mod broadcasts: atomic per epoch, transactional on failure."""

    @settings(max_examples=10, deadline=None)
    @given(workers=st.integers(1, 8), data=st.data())
    def test_midstream_flow_mods_stay_equivalent(self, workers, data):
        pipeline, macs = l2.build(16)
        flows = l2.traffic(macs, 24)
        pkts = [flows[i] for i in range(24)]
        new_mac = 0x02_0000_BEEF
        mods_between = [
            [add_mod(0, priority=9, port=7, eth_dst=new_mac)],
            [FlowMod(FlowModCommand.DELETE, 0, Match(eth_dst=new_mac), priority=9)],
        ]
        seq = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        with ShardedESwitch(pipeline, workers=workers, backend="thread") as eng:
            for round_no, mods in enumerate(mods_between):
                sv = seq.process_burst([p.copy() for p in pkts])
                ev = eng.process_burst([p.copy() for p in pkts])
                assert summarize(ev, eng.pipeline) == summarize(sv, seq.pipeline)
                seq.apply_flow_mods(mods)
                eng.apply_flow_mods(mods)
                assert eng.epoch == round_no + 1
                # The first burst after the barrier runs entirely on the
                # new generation — every shard gathers at the new epoch.
                sv = seq.process_burst([p.copy() for p in pkts])
                ev = eng.process_burst([p.copy() for p in pkts])
                assert summarize(ev, eng.pipeline) == summarize(sv, seq.pipeline)
                assert eng.last_gather_epochs == tuple(
                    eng.epoch for _ in eng.last_gather_epochs
                )

    def test_failed_batch_never_broadcast(self):
        pipeline, macs = l2.build(8)
        flows = l2.traffic(macs, 8)
        pkts = [flows[i] for i in range(8)]
        seq = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        bad_batch = [
            add_mod(0, priority=4, eth_dst=0x02_0000_0042),
            FlowMod(FlowModCommand.ADD, 0, Match(eth_dst=2), priority=-1),
        ]
        with ShardedESwitch(pipeline, workers=2, backend="thread") as eng:
            with pytest.raises(Exception):
                seq.apply_flow_mods(list(bad_batch))
            with pytest.raises(Exception):
                eng.apply_flow_mods(list(bad_batch))
            # Shadow rolled back, nothing broadcast: epoch unchanged and
            # the datapath still matches a sequential switch that also
            # rejected (and rolled back) the same batch.
            assert eng.epoch == 0
            ev = eng.process_burst([p.copy() for p in pkts])
            sv = seq.process_burst([p.copy() for p in pkts])
            assert summarize(ev, eng.pipeline) == summarize(sv, seq.pipeline)
            assert eng.last_gather_epochs == (0,) * len(eng.last_gather_epochs)

    def test_forced_epoch_desync_is_refused(self):
        pipeline, macs = l2.build(8)
        flows = l2.traffic(macs, 4)
        with ShardedESwitch(pipeline, workers=1, backend="thread") as eng:
            eng.epoch += 1  # simulate a burst racing past the barrier
            with pytest.raises(ShardWorkerError, match="epoch desync"):
                eng.process_burst([flows[0].copy()])


class TestLifecycle:
    def test_closed_engine_refuses_work(self):
        pipeline, macs = l2.build(8)
        eng = ShardedESwitch(pipeline, workers=1, backend="thread")
        eng.close()
        eng.close()  # idempotent
        with pytest.raises(RuntimeError):
            eng.process_burst([l2.traffic(macs, 1)[0]])
        with pytest.raises(RuntimeError):
            eng.apply_flow_mod(add_mod(0, eth_dst=1))

    def test_engine_never_mutates_caller_pipeline(self):
        pipeline, macs = l2.build(8)
        before = [len(t.entries) for t in pipeline]
        with ShardedESwitch(pipeline, workers=2, backend="thread") as eng:
            eng.apply_flow_mod(add_mod(0, priority=3, eth_dst=0x02_0000_0077))
            flows = l2.traffic(macs, 8)
            eng.process_burst([f.copy() for f in flows])
        assert [len(t.entries) for t in pipeline] == before

    def test_bad_worker_count(self):
        pipeline, _ = l2.build(8)
        with pytest.raises(ValueError):
            ShardedESwitch(pipeline, workers=0, backend="thread")
        with pytest.raises(ValueError):
            ShardedESwitch(pipeline, workers=2, backend="carrier-pigeon")


class TestProcessBackend:
    """End-to-end over real forked worker processes (the fast path)."""

    def test_gateway_equivalence_over_processes(self):
        pipeline, fib = gateway.build(n_ce=2, users_per_ce=8, n_prefixes=16)
        flows = gateway.traffic(fib, 48, n_ce=2, users_per_ce=8)
        pkts = [flows[i] for i in range(48)]
        seq = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        with ShardedESwitch(pipeline, workers=2) as eng:
            if eng.backend != "process":
                pytest.skip("platform cannot fork worker processes")
            seq_meter, eng_meter = CycleMeter(XEON_E5_2620), CycleMeter(XEON_E5_2620)
            sv = seq.process_burst([p.copy() for p in pkts], seq_meter)
            ev = eng.process_burst([p.copy() for p in pkts], eng_meter)
            assert summarize(ev, eng.pipeline) == summarize(sv, seq.pipeline)
            # Flow-mod broadcast crosses the process boundary too.
            mod = add_mod(0, priority=99, port=9, in_port=1)
            seq.apply_flow_mods([mod])
            eng.apply_flow_mods([mod])
            sv = seq.process_burst([p.copy() for p in pkts])
            ev = eng.process_burst([p.copy() for p in pkts])
            assert summarize(ev, eng.pipeline) == summarize(sv, seq.pipeline)
            assert eng.last_gather_epochs == tuple(
                eng.epoch for _ in eng.last_gather_epochs
            )
            eng.sync_flow_stats()
            assert flow_counts(eng.pipeline) == flow_counts(seq.pipeline)
            merged = eng.merged_burst_stats()
            assert merged.packets == 2 * len(pkts)
            assert isinstance(merged, BurstStats)
