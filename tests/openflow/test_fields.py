"""Tests for the OXM field registry."""

import pytest

from repro.openflow.fields import FIELDS, field_by_name, max_layer
from repro.packet import PacketBuilder
from repro.packet.parser import parse


class TestRegistry:
    def test_forty_fields(self):
        # OpenFlow 1.3 defines 40 OXM basic fields (the paper's "40+").
        assert len(FIELDS) == 40

    def test_unique_names_and_ids(self):
        assert len({f.name for f in FIELDS}) == len(FIELDS)
        assert len({f.oxm_id for f in FIELDS}) == len(FIELDS)

    def test_lookup_error_mentions_candidates(self):
        with pytest.raises(KeyError, match="ipv4_dst"):
            field_by_name("bogus")

    def test_max_layer(self):
        assert max_layer(["eth_dst"]) == 2
        assert max_layer(["eth_dst", "ipv4_dst"]) == 3
        assert max_layer(["tcp_dst"]) == 4
        assert max_layer(["in_port"]) == 2  # metadata floor is L2

    def test_expr_exists_for_wire_fields(self):
        for name in ("eth_dst", "ipv4_src", "tcp_dst", "udp_src", "vlan_vid",
                     "arp_tpa", "icmpv4_type", "in_port", "metadata"):
            assert field_by_name(name).expr is not None

    def test_unsupported_fields_extract_none(self):
        view = parse(PacketBuilder().eth().ipv4().tcp().build())
        for name in ("ipv6_src", "mpls_label", "sctp_dst", "pbb_isid"):
            assert field_by_name(name).extract(view) is None


class TestExtractors:
    def test_metadata_fields(self):
        pkt = PacketBuilder(in_port=4).eth().build()
        pkt.metadata = 0xDEAD
        pkt.tunnel_id = 99
        view = parse(pkt)
        assert field_by_name("in_port").extract(view) == 4
        assert field_by_name("metadata").extract(view) == 0xDEAD
        assert field_by_name("tunnel_id").extract(view) == 99

    def test_l4_fields_none_for_udp_packet(self):
        view = parse(PacketBuilder().eth().ipv4().udp(dst_port=53).build())
        assert field_by_name("tcp_dst").extract(view) is None
        assert field_by_name("udp_dst").extract(view) == 53

    def test_writers_roundtrip(self):
        pkt = PacketBuilder().eth().vlan(vid=9).ipv4().tcp().build()
        view = parse(pkt)
        cases = {
            "eth_dst": 0x020000000042,
            "eth_src": 0x020000000043,
            "vlan_vid": 777,
            "vlan_pcp": 5,
            "ip_dscp": 21,
            "ip_ecn": 2,
            "ipv4_src": 0x01020304,
            "ipv4_dst": 0x05060708,
            "tcp_src": 1111,
            "tcp_dst": 2222,
        }
        for name, value in cases.items():
            fdef = field_by_name(name)
            assert fdef.store is not None, name
            fdef.store(view, value)
            assert fdef.extract(view) == value, name

    def test_udp_port_writers(self):
        pkt = PacketBuilder().eth().ipv4().udp().build()
        view = parse(pkt)
        field_by_name("udp_dst").store(view, 4242)
        assert field_by_name("udp_dst").extract(view) == 4242

    def test_fields_have_sane_widths(self):
        assert field_by_name("eth_dst").width == 48
        assert field_by_name("ipv4_dst").width == 32
        assert field_by_name("tcp_dst").width == 16
        assert field_by_name("vlan_vid").width == 12
        assert field_by_name("ip_dscp").width == 6
        assert field_by_name("metadata").width == 64
