"""The OXM match-field registry (OpenFlow 1.3, 40 fields).

Every field the switch can match on is described once, here, by a
:class:`FieldDef` carrying everything the rest of the system needs:

* ``extract`` — pull the integer field value out of a parsed packet
  (used by the reference interpreter and the OVS flow-key extractor);
* ``expr`` — a Python expression template over the fast-path locals
  (``data``, ``l3``, ``l4``, ``pkt``) that reads the field straight from
  packet bytes.  The ESWITCH matcher templates are built from these, the
  exact analogue of the paper's per-field assembly matcher macros
  (``IP_DST_ADDR_MATCHER`` et al.);
* ``proto_required`` — protocol bitmask prerequisite, checked by the
  generated code just like the paper's ``bt r15d, IP`` guard;
* ``store`` — optional writer enabling the set-field action template.

Fields the wire formats here don't carry (IPv6, MPLS, SCTP, PBB) are
registered — the registry is complete per the spec's 40 OXM basic fields —
but extract to ``None``, so matches on them simply never hit, as on a
switch whose parser does not recognize the header.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.packet import parser as pp
from repro.packet.parser import ParsedPacket

L_META, L2, L3, L4 = 0, 2, 3, 4


@dataclass(frozen=True)
class FieldDef:
    """Static description of one OXM match field.

    ``proto_required`` is an *any-of* bitmask: the packet must carry at
    least one of the flagged protocols for the field to exist. Most fields
    need exactly one protocol; dual-family fields like ``ip_proto`` accept
    IPv4 or IPv6.
    """

    name: str
    oxm_id: int
    width: int  # bits
    layer: int  # 0 = pipeline metadata, 2/3/4 = protocol layer
    proto_required: int  # any-of protocol bitmask prerequisite (0 = none)
    maskable: bool
    extract: Callable[[ParsedPacket], "int | None"]
    expr: str | None = None  # fast-path read expression, None = unsupported
    store: Callable[[ParsedPacket, int], None] | None = None

    @property
    def max_value(self) -> int:
        return (1 << self.width) - 1

    def __repr__(self) -> str:
        return f"FieldDef({self.name!r})"


def _unsupported(_view: ParsedPacket) -> "int | None":
    return None


# -- extractors ------------------------------------------------------------


def _x_in_port(view: ParsedPacket) -> int:
    return view.pkt.in_port


def _x_metadata(view: ParsedPacket) -> int:
    return view.pkt.metadata


def _x_tunnel_id(view: ParsedPacket) -> int:
    return view.pkt.tunnel_id


def _x_eth_dst(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_ETH:
        return None
    d = view.pkt.data
    return int.from_bytes(d[0:6], "big")


def _x_eth_src(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_ETH:
        return None
    d = view.pkt.data
    return int.from_bytes(d[6:12], "big")


def _x_eth_type(view: ParsedPacket) -> "int | None":
    """The *effective* ethertype: the one after any VLAN tags (per OF spec)."""
    if not view.proto & pp.PROTO_ETH:
        return None
    d = view.pkt.data
    offset = 12
    ethertype = (d[offset] << 8) | d[offset + 1]
    while ethertype == 0x8100 and len(d) >= offset + 6:
        offset += 4
        ethertype = (d[offset] << 8) | d[offset + 1]
    return ethertype


def _x_vlan_vid(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_VLAN:
        return None
    d = view.pkt.data
    return ((d[14] << 8) | d[15]) & 0xFFF


def _x_vlan_pcp(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_VLAN:
        return None
    return view.pkt.data[14] >> 5


def _x_ip_dscp(view: ParsedPacket) -> "int | None":
    if view.proto & pp.PROTO_IPV4:
        return view.pkt.data[view.l3 + 1] >> 2
    if view.proto & pp.PROTO_IPV6:
        return _ipv6_traffic_class(view) >> 2
    return None


def _x_ip_ecn(view: ParsedPacket) -> "int | None":
    if view.proto & pp.PROTO_IPV4:
        return view.pkt.data[view.l3 + 1] & 0x3
    if view.proto & pp.PROTO_IPV6:
        return _ipv6_traffic_class(view) & 0x3
    return None


def _ipv6_traffic_class(view: ParsedPacket) -> int:
    d, o = view.pkt.data, view.l3
    return ((d[o] & 0x0F) << 4) | (d[o + 1] >> 4)


def _x_ip_proto(view: ParsedPacket) -> "int | None":
    if not view.proto & (pp.PROTO_IPV4 | pp.PROTO_IPV6):
        return None
    return view.l4_proto if view.l4_proto >= 0 else None


def _x_ipv4_src(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_IPV4:
        return None
    d, o = view.pkt.data, view.l3
    return int.from_bytes(d[o + 12 : o + 16], "big")


def _x_ipv4_dst(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_IPV4:
        return None
    d, o = view.pkt.data, view.l3
    return int.from_bytes(d[o + 16 : o + 20], "big")


def _x_tcp_src(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_TCP:
        return None
    d, o = view.pkt.data, view.l4
    return (d[o] << 8) | d[o + 1]


def _x_tcp_dst(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_TCP:
        return None
    d, o = view.pkt.data, view.l4
    return (d[o + 2] << 8) | d[o + 3]


def _x_udp_src(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_UDP:
        return None
    d, o = view.pkt.data, view.l4
    return (d[o] << 8) | d[o + 1]


def _x_udp_dst(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_UDP:
        return None
    d, o = view.pkt.data, view.l4
    return (d[o + 2] << 8) | d[o + 3]


def _x_icmpv4_type(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_ICMP:
        return None
    return view.pkt.data[view.l4]


def _x_icmpv4_code(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_ICMP:
        return None
    return view.pkt.data[view.l4 + 1]


def _x_ipv6_src(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_IPV6:
        return None
    d, o = view.pkt.data, view.l3
    return int.from_bytes(d[o + 8 : o + 24], "big")


def _x_ipv6_dst(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_IPV6:
        return None
    d, o = view.pkt.data, view.l3
    return int.from_bytes(d[o + 24 : o + 40], "big")


def _x_ipv6_flabel(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_IPV6:
        return None
    d, o = view.pkt.data, view.l3
    return ((d[o + 1] & 0x0F) << 16) | (d[o + 2] << 8) | d[o + 3]


def _x_icmpv6_type(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_ICMP6:
        return None
    return view.pkt.data[view.l4]


def _x_icmpv6_code(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_ICMP6:
        return None
    return view.pkt.data[view.l4 + 1]


def _x_arp_op(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_ARP:
        return None
    d, o = view.pkt.data, view.l3
    return (d[o + 6] << 8) | d[o + 7]


def _x_arp_spa(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_ARP:
        return None
    d, o = view.pkt.data, view.l3
    return int.from_bytes(d[o + 14 : o + 18], "big")


def _x_arp_tpa(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_ARP:
        return None
    d, o = view.pkt.data, view.l3
    return int.from_bytes(d[o + 24 : o + 28], "big")


def _x_arp_sha(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_ARP:
        return None
    d, o = view.pkt.data, view.l3
    return int.from_bytes(d[o + 8 : o + 14], "big")


def _x_arp_tha(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_ARP:
        return None
    d, o = view.pkt.data, view.l3
    return int.from_bytes(d[o + 18 : o + 24], "big")


# -- writers (set-field action support) --------------------------------------


def _w_eth_dst(view: ParsedPacket, value: int) -> None:
    view.pkt.data[0:6] = value.to_bytes(6, "big")


def _w_eth_src(view: ParsedPacket, value: int) -> None:
    view.pkt.data[6:12] = value.to_bytes(6, "big")


def _w_vlan_vid(view: ParsedPacket, value: int) -> None:
    d = view.pkt.data
    d[14] = (d[14] & 0xF0) | ((value >> 8) & 0x0F)
    d[15] = value & 0xFF


def _w_vlan_pcp(view: ParsedPacket, value: int) -> None:
    d = view.pkt.data
    d[14] = ((value & 0x7) << 5) | (d[14] & 0x1F)


def _w_ip_dscp(view: ParsedPacket, value: int) -> None:
    d, o = view.pkt.data, view.l3
    if view.proto & pp.PROTO_IPV4:
        d[o + 1] = ((value & 0x3F) << 2) | (d[o + 1] & 0x3)
    else:  # IPv6: dscp = top 6 bits of the traffic class
        tc = (_ipv6_traffic_class(view) & 0x3) | ((value & 0x3F) << 2)
        d[o] = (d[o] & 0xF0) | (tc >> 4)
        d[o + 1] = ((tc & 0x0F) << 4) | (d[o + 1] & 0x0F)


def _w_ip_ecn(view: ParsedPacket, value: int) -> None:
    d, o = view.pkt.data, view.l3
    if view.proto & pp.PROTO_IPV4:
        d[o + 1] = (d[o + 1] & 0xFC) | (value & 0x3)
    else:
        tc = (_ipv6_traffic_class(view) & 0xFC) | (value & 0x3)
        d[o] = (d[o] & 0xF0) | (tc >> 4)
        d[o + 1] = ((tc & 0x0F) << 4) | (d[o + 1] & 0x0F)


def _w_ipv4_src(view: ParsedPacket, value: int) -> None:
    d, o = view.pkt.data, view.l3
    d[o + 12 : o + 16] = value.to_bytes(4, "big")


def _w_ipv4_dst(view: ParsedPacket, value: int) -> None:
    d, o = view.pkt.data, view.l3
    d[o + 16 : o + 20] = value.to_bytes(4, "big")


def _w_tcp_src(view: ParsedPacket, value: int) -> None:
    d, o = view.pkt.data, view.l4
    d[o : o + 2] = value.to_bytes(2, "big")


def _w_tcp_dst(view: ParsedPacket, value: int) -> None:
    d, o = view.pkt.data, view.l4
    d[o + 2 : o + 4] = value.to_bytes(2, "big")


def _w_udp_src(view: ParsedPacket, value: int) -> None:
    d, o = view.pkt.data, view.l4
    d[o : o + 2] = value.to_bytes(2, "big")


def _w_udp_dst(view: ParsedPacket, value: int) -> None:
    d, o = view.pkt.data, view.l4
    d[o + 2 : o + 4] = value.to_bytes(2, "big")


def _w_ipv6_src(view: ParsedPacket, value: int) -> None:
    d, o = view.pkt.data, view.l3
    d[o + 8 : o + 24] = value.to_bytes(16, "big")


def _w_ipv6_dst(view: ParsedPacket, value: int) -> None:
    d, o = view.pkt.data, view.l3
    d[o + 24 : o + 40] = value.to_bytes(16, "big")


def _w_metadata(view: ParsedPacket, value: int) -> None:
    view.pkt.metadata = value


# -- the registry -------------------------------------------------------------

# Fast-path read expressions over locals (data, l3, l4, pkt). These are the
# Python counterparts of the paper's matcher-template memory loads, e.g.
# IP_DST_ADDR_MATCHER's `mov eax,[r13+0x10]` becomes the ipv4_dst expression.
_E = {
    "in_port": "pkt.in_port",
    "metadata": "pkt.metadata",
    "tunnel_id": "pkt.tunnel_id",
    "eth_dst": "(data[0]<<40)|(data[1]<<32)|(data[2]<<24)|(data[3]<<16)|(data[4]<<8)|data[5]",
    "eth_src": "(data[6]<<40)|(data[7]<<32)|(data[8]<<24)|(data[9]<<16)|(data[10]<<8)|data[11]",
    # `etype` is a preamble local: the effective (post-VLAN) ethertype.
    "eth_type": "etype",
    "vlan_vid": "((data[14]<<8)|data[15])&0xFFF",
    "vlan_pcp": "data[14]>>5",
    # dscp/ecn live in different bits per IP family; `proto` decides.
    "ip_dscp": "((data[l3+1]>>2) if proto & 0x4 else ((((data[l3]&0xF)<<4)|(data[l3+1]>>4))>>2))",
    "ip_ecn": "((data[l3+1]&0x3) if proto & 0x4 else ((data[l3+1]>>4)&0x3))",
    # `nxt` is a preamble local: the resolved IP protocol / next header.
    "ip_proto": "nxt",
    "ipv4_src": "(data[l3+12]<<24)|(data[l3+13]<<16)|(data[l3+14]<<8)|data[l3+15]",
    "ipv4_dst": "(data[l3+16]<<24)|(data[l3+17]<<16)|(data[l3+18]<<8)|data[l3+19]",
    "tcp_src": "(data[l4]<<8)|data[l4+1]",
    "tcp_dst": "(data[l4+2]<<8)|data[l4+3]",
    "udp_src": "(data[l4]<<8)|data[l4+1]",
    "udp_dst": "(data[l4+2]<<8)|data[l4+3]",
    "icmpv4_type": "data[l4]",
    "icmpv4_code": "data[l4+1]",
    "ipv6_src": "int.from_bytes(data[l3+8:l3+24],'big')",
    "ipv6_dst": "int.from_bytes(data[l3+24:l3+40],'big')",
    "ipv6_flabel": "(((data[l3+1]&0xF)<<16)|(data[l3+2]<<8)|data[l3+3])",
    "icmpv6_type": "data[l4]",
    "icmpv6_code": "data[l4+1]",
    "arp_op": "(data[l3+6]<<8)|data[l3+7]",
    "arp_spa": "(data[l3+14]<<24)|(data[l3+15]<<16)|(data[l3+16]<<8)|data[l3+17]",
    "arp_tpa": "(data[l3+24]<<24)|(data[l3+25]<<16)|(data[l3+26]<<8)|data[l3+27]",
    "arp_sha": "(data[l3+8]<<40)|(data[l3+9]<<32)|(data[l3+10]<<24)|(data[l3+11]<<16)|(data[l3+12]<<8)|data[l3+13]",
    "arp_tha": "(data[l3+18]<<40)|(data[l3+19]<<32)|(data[l3+20]<<24)|(data[l3+21]<<16)|(data[l3+22]<<8)|data[l3+23]",
}


def _f(
    name: str,
    oxm_id: int,
    width: int,
    layer: int,
    proto: int,
    maskable: bool,
    extract: Callable[[ParsedPacket], "int | None"],
    store: Callable[[ParsedPacket, int], None] | None = None,
) -> FieldDef:
    return FieldDef(
        name=name,
        oxm_id=oxm_id,
        width=width,
        layer=layer,
        proto_required=proto,
        maskable=maskable,
        extract=extract,
        expr=_E.get(name),
        store=store,
    )


FIELDS: tuple[FieldDef, ...] = (
    _f("in_port", 0, 32, L_META, 0, False, _x_in_port),
    _f("in_phy_port", 1, 32, L_META, 0, False, _x_in_port),
    _f("metadata", 2, 64, L_META, 0, True, _x_metadata, _w_metadata),
    _f("eth_dst", 3, 48, L2, pp.PROTO_ETH, True, _x_eth_dst, _w_eth_dst),
    _f("eth_src", 4, 48, L2, pp.PROTO_ETH, True, _x_eth_src, _w_eth_src),
    _f("eth_type", 5, 16, L2, pp.PROTO_ETH, False, _x_eth_type),
    _f("vlan_vid", 6, 12, L2, pp.PROTO_VLAN, True, _x_vlan_vid, _w_vlan_vid),
    _f("vlan_pcp", 7, 3, L2, pp.PROTO_VLAN, False, _x_vlan_pcp, _w_vlan_pcp),
    _f("ip_dscp", 8, 6, L3, pp.PROTO_IPV4 | pp.PROTO_IPV6, False, _x_ip_dscp, _w_ip_dscp),
    _f("ip_ecn", 9, 2, L3, pp.PROTO_IPV4 | pp.PROTO_IPV6, False, _x_ip_ecn, _w_ip_ecn),
    # ip_proto is semantically L3, but resolving IPv6 extension-header
    # chains is L4 parser work, so it requires the full parse.
    _f("ip_proto", 10, 8, L4, pp.PROTO_IPV4 | pp.PROTO_IPV6, False, _x_ip_proto),
    _f("ipv4_src", 11, 32, L3, pp.PROTO_IPV4, True, _x_ipv4_src, _w_ipv4_src),
    _f("ipv4_dst", 12, 32, L3, pp.PROTO_IPV4, True, _x_ipv4_dst, _w_ipv4_dst),
    _f("tcp_src", 13, 16, L4, pp.PROTO_TCP, False, _x_tcp_src, _w_tcp_src),
    _f("tcp_dst", 14, 16, L4, pp.PROTO_TCP, False, _x_tcp_dst, _w_tcp_dst),
    _f("udp_src", 15, 16, L4, pp.PROTO_UDP, False, _x_udp_src, _w_udp_src),
    _f("udp_dst", 16, 16, L4, pp.PROTO_UDP, False, _x_udp_dst, _w_udp_dst),
    _f("sctp_src", 17, 16, L4, pp.PROTO_SCTP, False, _unsupported),
    _f("sctp_dst", 18, 16, L4, pp.PROTO_SCTP, False, _unsupported),
    _f("icmpv4_type", 19, 8, L4, pp.PROTO_ICMP, False, _x_icmpv4_type),
    _f("icmpv4_code", 20, 8, L4, pp.PROTO_ICMP, False, _x_icmpv4_code),
    _f("arp_op", 21, 16, L3, pp.PROTO_ARP, False, _x_arp_op),
    _f("arp_spa", 22, 32, L3, pp.PROTO_ARP, True, _x_arp_spa),
    _f("arp_tpa", 23, 32, L3, pp.PROTO_ARP, True, _x_arp_tpa),
    _f("arp_sha", 24, 48, L3, pp.PROTO_ARP, True, _x_arp_sha),
    _f("arp_tha", 25, 48, L3, pp.PROTO_ARP, True, _x_arp_tha),
    _f("ipv6_src", 26, 128, L3, pp.PROTO_IPV6, True, _x_ipv6_src, _w_ipv6_src),
    _f("ipv6_dst", 27, 128, L3, pp.PROTO_IPV6, True, _x_ipv6_dst, _w_ipv6_dst),
    _f("ipv6_flabel", 28, 20, L3, pp.PROTO_IPV6, True, _x_ipv6_flabel),
    _f("icmpv6_type", 29, 8, L4, pp.PROTO_ICMP6, False, _x_icmpv6_type),
    _f("icmpv6_code", 30, 8, L4, pp.PROTO_ICMP6, False, _x_icmpv6_code),
    _f("ipv6_nd_target", 31, 128, L3, pp.PROTO_IPV6, False, _unsupported),
    _f("ipv6_nd_sll", 32, 48, L3, pp.PROTO_IPV6, False, _unsupported),
    _f("ipv6_nd_tll", 33, 48, L3, pp.PROTO_IPV6, False, _unsupported),
    _f("mpls_label", 34, 20, L2, pp.PROTO_MPLS, False, _unsupported),
    _f("mpls_tc", 35, 3, L2, pp.PROTO_MPLS, False, _unsupported),
    _f("mpls_bos", 36, 1, L2, pp.PROTO_MPLS, False, _unsupported),
    _f("pbb_isid", 37, 24, L2, 0, True, _unsupported),
    _f("tunnel_id", 38, 64, L_META, 0, True, _x_tunnel_id),
    _f("ipv6_exthdr", 39, 9, L3, pp.PROTO_IPV6, True, _unsupported),
)

_BY_NAME: dict[str, FieldDef] = {f.name: f for f in FIELDS}


def field_by_name(name: str) -> FieldDef:
    """Look up a field definition; raises ``KeyError`` with a hint."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown OXM field {name!r}; known fields: {', '.join(sorted(_BY_NAME))}"
        ) from None


def max_layer(field_names: "list[str] | set[str] | tuple[str, ...]") -> int:
    """Deepest protocol layer any of ``field_names`` lives in (min 2).

    Decides which parser templates a compiled pipeline needs: pure-L2
    pipelines skip L3/L4 parsing entirely (Section 3.1).
    """
    deepest = 2
    for name in field_names:
        deepest = max(deepest, _BY_NAME[name].layer)
    return deepest
