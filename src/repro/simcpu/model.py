"""The analytic performance model of Section 4.4.

A compiled datapath "is just a handful of templates linked into a binary",
so its per-packet cost decomposes into performance atoms: a fixed
instruction component per template plus a variable component — the memory
accesses, each costing ``Lx`` cycles depending on which cache level the
working set occupies.

:class:`AnalyticModel` is a list of :class:`StageCost` atoms; evaluating it
under an optimistic all-L1 assumption gives the paper's *model-ub* packet
rate, under a pessimistic all-L3 assumption *model-lb* (Figs. 13 and 16).

For the gateway pipeline the paper's Fig. 20 rundown gives
``166 + 3*Lx`` cycles per packet: 178 cycles / 11.2 Mpps optimistic,
202 / 9.9 Mpps with L2 accesses, 253 / 7.9 Mpps pessimistic — reproduced by
:func:`gateway_model` and asserted in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.simcpu.costs import CostBook, DEFAULT_COSTS
from repro.simcpu.platform import Platform, XEON_E5_2620


@dataclass(frozen=True)
class StageCost:
    """One pipeline stage's performance atom.

    ``fixed`` cycles always accrue; each of the ``mem_accesses`` costs the
    latency of whatever cache level it is assumed (or measured) to hit.
    """

    name: str
    fixed: float
    mem_accesses: int = 0
    comment: str = ""


class AnalyticModel:
    """A composable per-packet cost model: sum of stage atoms."""

    def __init__(self, stages: Iterable[StageCost], platform: Platform = XEON_E5_2620):
        self.stages = tuple(stages)
        self.platform = platform

    @property
    def fixed_cycles(self) -> float:
        return sum(stage.fixed for stage in self.stages)

    @property
    def mem_accesses(self) -> int:
        return sum(stage.mem_accesses for stage in self.stages)

    def cycles(self, cache_level: int) -> float:
        """Per-packet cycles assuming every access hits ``cache_level``."""
        return self.fixed_cycles + self.mem_accesses * self.platform.latency(cache_level)

    def pps(self, cache_level: int) -> float:
        return self.platform.pps(self.cycles(cache_level))

    def bounds(self) -> tuple[float, float]:
        """(model-lb, model-ub) packet rates: all-L3 vs all-L1 accesses."""
        return self.pps(3), self.pps(1)

    def cycle_bounds(self) -> tuple[float, float]:
        """(best-case, worst-case) per-packet cycles: all-L1 vs all-L3."""
        return self.cycles(1), self.cycles(3)

    def rundown(self) -> list[tuple[str, str, str]]:
        """Fig. 20-style table rows: (stage, cycles, comment)."""
        rows = []
        for stage in self.stages:
            if stage.mem_accesses == 0:
                cycles = f"{stage.fixed:g}"
            elif stage.mem_accesses == 1:
                cycles = f"{stage.fixed:g} + Lx"
            else:
                cycles = f"{stage.fixed:g} + {stage.mem_accesses}*Lx"
            rows.append((stage.name, cycles, stage.comment))
        return rows

    def __add__(self, other: "AnalyticModel") -> "AnalyticModel":
        if self.platform is not other.platform:
            raise ValueError("cannot add models for different platforms")
        return AnalyticModel(self.stages + other.stages, self.platform)


def gateway_model(
    costs: CostBook = DEFAULT_COSTS, platform: Platform = XEON_E5_2620
) -> AnalyticModel:
    """The Fig. 20 rundown for the access-gateway use case (user→network).

    PKT_IN 40, parser 28, Table 0 hash 8+L1, per-CE hash 8+Lx,
    LPM 13+2*Lx, actions 25, PKT_OUT 40 — i.e. ``166 + 3*Lx``: Table 0 is
    small enough to "warrant a safe L1 CPU cache access" so its 8+L1 is
    folded into the fixed component, leaving 3 variable accesses (one for
    the per-CE hash, two for the DIR-24-8 LPM).
    """
    return AnalyticModel(
        (
            StageCost("PKT_IN", costs.pkt_in, 0, "DPDK packet receive IO"),
            StageCost("parser template", costs.parser_combined, 0, "Parse header fields"),
            StageCost(
                "hash template 1",
                costs.hash_base + platform.lat_l1,
                0,
                "Table 0 lookup (8 + L1)",
            ),
            StageCost("hash template 2", costs.hash_base, 1, "Per-CE table lookup"),
            StageCost("LPM template", costs.lpm_base, 2, "Routing table LPM"),
            StageCost("action templates", costs.action_set, 0, "Action set processing"),
            StageCost("PKT_OUT", costs.pkt_out, 0, "DPDK packet transmit IO"),
        ),
        platform,
    )


def gateway_paper_bounds(platform: Platform = XEON_E5_2620) -> dict[str, float]:
    """The paper's three headline estimates for the gateway (Section 4.4).

    ``166 + 3*Lx`` cycles per packet: all-L1 → 178 cycles / 11.2 Mpps;
    all-L2 → 202 / 9.9 Mpps; all-L3 → 253 / 7.9 Mpps.
    """
    fixed = 166.0
    out = {}
    for label, level in (("ub", 1), ("mid", 2), ("lb", 3)):
        cycles = fixed + 3 * platform.latency(level)
        out[f"cycles_{label}"] = cycles
        out[f"pps_{label}"] = platform.pps(cycles)
    return out
