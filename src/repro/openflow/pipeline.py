"""The OpenFlow pipeline and the reference interpreter.

:class:`Pipeline` is the declarative program: a linked hierarchy of flow
tables (Section 2). :meth:`Pipeline.process` is the *direct datapath* of
Section 2.1 — it interprets the tables exactly, walking entries in priority
order. It is deliberately unoptimized: it serves as

* the semantic ground truth that both fast switches are differentially
  tested against,
* the OVS slow path (``vswitchd`` calls it with tracing enabled to learn
  which entries a packet probed, the input to megaflow generation), and
* the fallback the ESWITCH compiler's output must be equivalent to.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.openflow.actions import Action, Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable, TableMissPolicy
from repro.openflow.instructions import (
    ApplyActions,
    ClearActions,
    GotoTable,
    WriteActions,
    WriteMetadata,
)
from repro.openflow.meters import MeterInstruction, MeterTable, SimClock
from repro.packet.packet import Packet
from repro.packet.parser import ParsedPacket, parse

#: Hard bound on tables visited per packet; decomposition may produce far
#: more than OpenFlow's 255-table limit (Section 3.2), but any single packet
#: traverses at most one table per input field, so this is a loop guard only.
MAX_TABLE_HOPS = 10_000

#: OpenFlow's logical table-id space (0..254 usable, 255 = OFPTT_ALL).
#: Admission control rejects flow-mods addressing tables beyond it with
#: ``OFPFMFC_BAD_TABLE_ID``; *internal* tables minted by decomposition are
#: not logical tables and are free to exceed it.
MAX_TABLES = 255


class PipelineError(Exception):
    """Raised on malformed pipeline programs (bad goto, missing table)."""


class Verdict:
    """The fate of one packet: where it went and how it got there.

    Attributes:
        output_ports: ports the packet was forwarded to (empty = dropped).
        dropped: an explicit drop action or a drop-policy table miss fired.
        to_controller: the packet was punted to the controller.
        table_miss: at least one table lookup missed.
        path: ``(table_id, entry | None)`` per table visited, in order.
        probed: per-table list of entries examined (populated when the
            interpreter runs with ``trace=True``); feeds megaflow wildcards.
    """

    __slots__ = (
        "output_ports",
        "dropped",
        "to_controller",
        "table_miss",
        "reparse_needed",
        "path",
        "probed",
    )

    def __init__(self) -> None:
        self.output_ports: list[int] = []
        self.dropped = False
        self.to_controller = False
        self.table_miss = False
        self.reparse_needed = False
        self.path: list[tuple[int, FlowEntry | None]] = []
        self.probed: list[tuple[int, list[FlowEntry]]] = []

    @property
    def forwarded(self) -> bool:
        return bool(self.output_ports) and not self.dropped

    def summary(self) -> tuple[tuple[int, ...], bool, bool]:
        """Canonical fate triple for differential testing."""
        return tuple(self.output_ports), self.dropped, self.to_controller

    def __repr__(self) -> str:
        if self.dropped:
            return "Verdict(drop)"
        if not self.output_ports:
            return "Verdict(no-op)"
        return f"Verdict(ports={self.output_ports})"


class Pipeline:
    """A linked hierarchy of flow tables, keyed by table id.

    ``groups`` is the switch's group table (OpenFlow group entries);
    reference it from flow entries via
    :class:`~repro.openflow.groups.GroupAction`.
    """

    def __init__(self, tables: Iterable[FlowTable] = ()):
        from repro.openflow.groups import GroupTable

        self._tables: dict[int, FlowTable] = {}
        self.groups = GroupTable()
        self.clock = SimClock()
        self.meters = MeterTable(clock=self.clock)
        for table in tables:
            self.add_table(table)

    # -- construction -------------------------------------------------------

    def add_table(self, table: FlowTable) -> FlowTable:
        if table.table_id in self._tables:
            raise PipelineError(f"duplicate table id {table.table_id}")
        self._tables[table.table_id] = table
        return table

    def table(self, table_id: int) -> FlowTable:
        try:
            return self._tables[table_id]
        except KeyError:
            raise PipelineError(f"no table with id {table_id}") from None

    def get_or_create(self, table_id: int, **kwargs: object) -> FlowTable:
        if table_id not in self._tables:
            self._tables[table_id] = FlowTable(table_id, **kwargs)  # type: ignore[arg-type]
        return self._tables[table_id]

    @property
    def tables(self) -> tuple[FlowTable, ...]:
        """Tables in ascending id order."""
        return tuple(self._tables[tid] for tid in sorted(self._tables))

    @property
    def first_table(self) -> FlowTable:
        if not self._tables:
            raise PipelineError("pipeline has no tables")
        return self._tables[min(self._tables)]

    def total_entries(self) -> int:
        return sum(len(t) for t in self._tables.values())

    def matched_fields(self) -> tuple[str, ...]:
        names: set[str] = set()
        for table in self._tables.values():
            names.update(table.matched_fields())
        return tuple(sorted(names))

    def validate(self) -> None:
        """Check every goto-table target exists and moves forward."""
        for table in self._tables.values():
            for entry in table:
                target = entry.goto_table
                if target is None:
                    continue
                if target not in self._tables:
                    raise PipelineError(
                        f"table {table.table_id} jumps to missing table {target}"
                    )
                if target <= table.table_id:
                    raise PipelineError(
                        f"table {table.table_id} jumps backwards to {target}"
                    )

    # -- the reference interpreter (direct datapath) --------------------------

    def process(self, pkt: Packet, trace: bool = False) -> Verdict:
        """Interpret the pipeline on one packet.

        With ``trace=True`` the verdict's ``probed`` lists every entry
        examined in each table — the raw material of megaflow wildcards.
        """
        verdict = Verdict()
        view = parse(pkt)
        self._run(view, verdict, trace)
        return verdict

    def process_view(self, view: ParsedPacket, trace: bool = False) -> Verdict:
        """Interpret starting from an already-parsed view."""
        verdict = Verdict()
        self._run(view, verdict, trace)
        return verdict

    def _run(self, view: ParsedPacket, verdict: Verdict, trace: bool) -> None:
        if not self._tables:
            raise PipelineError("pipeline has no tables")
        table_id = min(self._tables)
        action_set: list[Action] = []
        hops = 0
        while True:
            hops += 1
            if hops > MAX_TABLE_HOPS:
                raise PipelineError("pipeline loop detected")
            table = self._tables.get(table_id)
            if table is None:
                raise PipelineError(f"goto_table to missing table {table_id}")

            probed: list[FlowEntry] | None = [] if trace else None
            entry = table.lookup(view, probed)
            if trace:
                verdict.probed.append((table_id, probed or []))
            verdict.path.append((table_id, entry))

            if entry is None:
                verdict.table_miss = True
                if table.miss_policy is TableMissPolicy.CONTROLLER:
                    verdict.to_controller = True
                else:
                    verdict.dropped = True
                return

            entry.counters.record(len(view.pkt))
            # Meters run before the entry's other instructions (OF 1.3):
            # a fired drop band kills the packet here, earlier entries'
            # already-applied effects standing.
            for instr in entry.instructions:
                if isinstance(instr, MeterInstruction):
                    if not instr.allow():
                        verdict.dropped = True
                        return
                    break
            next_table: int | None = None
            for instr in entry.instructions:
                if isinstance(instr, ApplyActions):
                    for action in instr.actions:
                        action.apply(view, verdict)
                        if verdict.reparse_needed:
                            # VLAN push/pop moved header offsets; later
                            # actions must see the new layout immediately.
                            view = parse(view.pkt)
                            verdict.reparse_needed = False
                elif isinstance(instr, WriteActions):
                    action_set.extend(instr.actions)
                elif isinstance(instr, ClearActions):
                    action_set.clear()
                elif isinstance(instr, WriteMetadata):
                    view.pkt.metadata = (view.pkt.metadata & ~instr.mask) | (
                        instr.value & instr.mask
                    )
                elif isinstance(instr, GotoTable):
                    next_table = instr.table_id
            if verdict.dropped:
                return
            if next_table is None:
                break
            table_id = next_table

        if action_set:
            # Execute the accumulated action set; outputs go last, matching
            # the spec's action-set execution order.
            ordered = [a for a in action_set if not isinstance(a, Output)] + [
                a for a in action_set if isinstance(a, Output)
            ]
            for action in ordered:
                action.apply(view, verdict)
                if verdict.reparse_needed:
                    view = parse(view.pkt)
                    verdict.reparse_needed = False

    def __iter__(self) -> Iterator[FlowTable]:
        return iter(self.tables)

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:
        return f"Pipeline(tables={len(self._tables)}, entries={self.total_entries()})"
