"""Tests for the vswitchd slow path: traversal, megaflow output, NAT."""

from hypothesis import given, settings

import strategies as sts

from repro.openflow.flow_table import TableMissPolicy
from repro.ovs.vswitchd import Vswitchd
from repro.packet import PacketBuilder
from repro.usecases import firewall, gateway


class TestTraversal:
    def test_agrees_with_reference_interpreter(self):
        vsw = Vswitchd(firewall.build_single_stage())
        reference = firewall.build_single_stage()
        pkt = (PacketBuilder(in_port=2).eth().ipv4(dst=firewall.SERVER_IP)
               .tcp(dst_port=80).build())
        result = vsw.upcall(pkt.copy())
        assert result.verdict.summary() == reference.process(pkt.copy()).summary()

    @settings(max_examples=60, deadline=None)
    @given(sts.pipelines(), sts.packets())
    def test_differential_vs_interpreter(self, pipeline, pkt):
        vsw = Vswitchd(pipeline)
        expected = pipeline.process(pkt.copy()).summary()
        result = vsw.upcall(pkt.copy())
        assert result.verdict.summary() == expected

    def test_multi_stage_visits_tables(self):
        vsw = Vswitchd(firewall.build_multi_stage())
        pkt = (PacketBuilder(in_port=1).eth().ipv4(dst=firewall.SERVER_IP)
               .tcp(dst_port=80).build())
        result = vsw.upcall(pkt)
        assert result.tables_visited == 2


class TestMegaflowGeneration:
    def test_megaflow_keyed_on_ingress_values(self):
        """NAT rewrites ipv4_src mid-pipeline; the megaflow must still be
        keyed on the *pre-NAT* source address."""
        pipeline, fib = gateway.build(n_ce=2, users_per_ce=2, n_prefixes=50)
        vsw = Vswitchd(pipeline)
        flows = gateway.traffic(fib, 4, n_ce=2, users_per_ce=2)
        pkt = flows[0].copy()
        result = vsw.upcall(pkt)
        assert result.megaflow is not None
        sig = dict(result.megaflow.sig)
        assert "ipv4_src" in sig
        index = list(dict(result.megaflow.sig)).index("ipv4_src")
        private = gateway.private_ip(0, 0)
        assert result.megaflow.masked_key[index] == private & sig["ipv4_src"]

    def test_controller_punt_not_cacheable(self):
        pipeline, fib = gateway.build(
            n_ce=1, users_per_ce=1, n_prefixes=20, provision_users=False
        )
        vsw = Vswitchd(pipeline)
        pkt = gateway.traffic(fib, 1, n_ce=1, users_per_ce=1)[0]
        result = vsw.upcall(pkt.copy())
        assert result.verdict.to_controller
        assert result.megaflow is None

    def test_drop_miss_is_cacheable(self):
        from repro.openflow.actions import Output
        from repro.openflow.flow_entry import FlowEntry
        from repro.openflow.flow_table import FlowTable
        from repro.openflow.match import Match
        from repro.openflow.pipeline import Pipeline

        table = FlowTable(0, miss_policy=TableMissPolicy.DROP)
        table.add(FlowEntry(Match(tcp_dst=443), priority=1, actions=[Output(1)]))
        vsw = Vswitchd(Pipeline([table]))
        pkt = PacketBuilder(in_port=9).eth().ipv4().tcp(dst_port=80).build()
        result = vsw.upcall(pkt)
        assert result.verdict.dropped and result.verdict.table_miss
        assert result.megaflow is not None
        assert result.megaflow.dropped

    def test_probed_subtable_masks_folded_in(self):
        vsw = Vswitchd(firewall.build_single_stage())
        # An inbound HTTP packet probes the in_port=INTERNAL rule (misses),
        # then matches the full firewall rule: the megaflow mask must
        # include all of that rule's fields.
        pkt = (PacketBuilder(in_port=firewall.EXTERNAL).eth()
               .ipv4(dst=firewall.SERVER_IP).tcp(dst_port=80).build())
        result = vsw.upcall(pkt)
        sig = dict(result.megaflow.sig)
        for name in ("in_port", "ipv4_dst", "tcp_dst"):
            assert name in sig

    def test_upcall_counter(self):
        vsw = Vswitchd(firewall.build_single_stage())
        pkt = PacketBuilder(in_port=1).eth().ipv4().tcp().build()
        vsw.upcall(pkt.copy())
        vsw.upcall(pkt.copy())
        assert vsw.upcalls == 2


class TestSubtableAccounting:
    def test_subtable_count_for_lpm_table(self):
        pipeline, _fib = gateway.build(n_ce=1, users_per_ce=1, n_prefixes=500)
        vsw = Vswitchd(pipeline)
        # One subtable per distinct prefix length (plus the catch-all).
        assert vsw.subtable_count(gateway.ROUTING_TABLE) <= 33
        assert vsw.subtable_count(gateway.ROUTING_TABLE) >= 5
