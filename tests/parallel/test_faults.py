"""Supervision under fire: faults must be unobservable in the answers.

The contract (ISSUE 4 tentpole): with a :class:`FaultInjector` killing,
hanging, or delaying workers at precisely chosen points, the sharded
engine still returns verdicts, modeled cycles, flow counters, and merged
burst telemetry identical to a sequential :class:`ESwitch` replay of the
same bursts — and a worker killed *inside* a flow-mod broadcast leaves
every surviving and respawned worker on the same epoch with the full
batch applied. Thread backend does the heavy lifting (cheap, identical
code path); one integration test exercises real forked processes.
"""

import math
import pickle

import pytest

from repro.core import ESwitch
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.parallel import (
    FaultInjector,
    FaultSpec,
    ShardedESwitch,
    ShardWorkerError,
)
from repro.simcpu.platform import XEON_E5_2620
from repro.simcpu.recorder import CycleMeter
from repro.usecases import l2

from test_sharded import add_mod, flow_counts, summarize


def l2_setup(n_macs=32, n_flows=48):
    pipeline, macs = l2.build(n_macs)
    flows = l2.traffic(macs, n_flows)
    return pipeline, flows


def engine(pipeline, injector, workers=2, **kw):
    kw.setdefault("backend", "thread")
    kw.setdefault("retry_backoff", 0.001)
    return ShardedESwitch(pipeline, workers=workers,
                          fault_injector=injector, **kw)


def assert_equivalent(eng, seq, bursts, sync=True):
    """Drive both switches; the shard/fault structure must not show."""
    for pkts in bursts:
        sv = seq.process_burst([p.copy() for p in pkts])
        ev = eng.process_burst([p.copy() for p in pkts])
        assert summarize(ev, eng.pipeline) == summarize(sv, seq.pipeline)
    if sync:
        eng.sync_flow_stats()
        assert flow_counts(eng.pipeline) == flow_counts(seq.pipeline)


class TestKillMidBurst:
    """A worker dying inside a burst: retried, exactly-once everywhere."""

    @pytest.mark.parametrize("when", ["before", "after"])
    def test_kill_is_unobservable(self, when):
        # "after" is the nastier placement: the sub-burst executed and
        # counted on the dead replica, but the reply (and its counter
        # deltas) never shipped — the retry must re-earn it all, once.
        pipeline, flows = l2_setup()
        seq = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        inj = FaultInjector(FaultSpec(shard=0, cmd="burst", when=when))
        with engine(pipeline, inj) as eng:
            bursts = [flows[i * 16:(i + 1) * 16] for i in range(3)]
            assert_equivalent(eng, seq, bursts)
            health = eng.health()
            assert health.faults_detected == 1
            assert health.respawns == 1
            assert health.retries == 1
            assert health.live_workers == 2
            assert not health.degraded
            merged = eng.merged_burst_stats()
            assert merged.packets == sum(len(b) for b in bursts)

    def test_kill_both_workers_same_burst(self):
        pipeline, flows = l2_setup()
        seq = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        inj = FaultInjector(
            FaultSpec(shard=0, cmd="burst", when="before"),
            FaultSpec(shard=1, cmd="burst", when="after"),
        )
        with engine(pipeline, inj) as eng:
            assert_equivalent(eng, seq, [flows[:32], flows[32:48]])
            health = eng.health()
            assert health.faults_detected == 2
            assert health.respawns == 2
            assert health.live_workers == 2


class TestKillMidBroadcast:
    """The epoch barrier must not wedge and must not half-apply."""

    @pytest.mark.parametrize("when", ["before", "after"])
    def test_barrier_survives_worker_death(self, when):
        # "after" means the replica applied the batch, re-fused, and died
        # holding the un-sent ack — the half-acked generation must not
        # leak; the replacement is born from the shadow at the new epoch.
        pipeline, flows = l2_setup(16, 24)
        seq = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        inj = FaultInjector(FaultSpec(shard=1, cmd="mods", when=when))
        mods = [add_mod(0, priority=9, port=7, eth_dst=0x02_0000_BEEF)]
        with engine(pipeline, inj) as eng:
            assert_equivalent(eng, seq, [flows[:24]], sync=False)
            seq.apply_flow_mods(mods)
            eng.apply_flow_mods(mods)
            assert eng.epoch == 1
            # Every surviving AND respawned worker sits at the new epoch
            # with the full batch applied (the acceptance criterion).
            assert eng.ping() == {0: 1, 1: 1}
            assert_equivalent(eng, seq, [flows[:24]], sync=False)
            assert all(e == 1 for e in eng.last_gather_epochs)
            health = eng.health()
            assert health.faults_detected == 1
            assert health.respawns == 1
            assert health.live_workers == 2

    def test_delete_broadcast_with_casualty(self):
        pipeline, flows = l2_setup(16, 24)
        seq = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        new_mac = 0x02_0000_BEEF
        inj = FaultInjector(
            FaultSpec(shard=0, cmd="mods", occurrence=2, when="after")
        )
        with engine(pipeline, inj) as eng:
            for mods in (
                [add_mod(0, priority=9, port=7, eth_dst=new_mac)],
                [FlowMod(FlowModCommand.DELETE, 0, Match(eth_dst=new_mac),
                         priority=9)],
            ):
                seq.apply_flow_mods(mods)
                eng.apply_flow_mods(mods)
                assert_equivalent(eng, seq, [flows[:24]], sync=False)
            assert eng.epoch == 2
            assert eng.ping() == {0: 2, 1: 2}


class TestHangsAndDelays:
    def test_hang_past_deadline_is_a_fault(self):
        pipeline, flows = l2_setup()
        seq = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        inj = FaultInjector(
            FaultSpec(shard=0, cmd="burst", kind="hang", seconds=5.0)
        )
        with engine(pipeline, inj, rpc_deadline=0.05) as eng:
            assert_equivalent(eng, seq, [flows[:32]], sync=False)
            health = eng.health()
            assert health.faults_detected == 1
            assert health.respawns == 1
            assert health.live_workers == 2

    def test_delay_below_deadline_is_not_a_fault(self):
        pipeline, flows = l2_setup()
        seq = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        inj = FaultInjector(
            FaultSpec(shard=0, cmd="burst", kind="delay", seconds=0.01)
        )
        with engine(pipeline, inj, rpc_deadline=5.0) as eng:
            assert_equivalent(eng, seq, [flows[:32]])
            health = eng.health()
            assert health.faults_detected == 0
            assert health.respawns == 0
            assert health.retries == 0


class TestDegradation:
    def test_dead_shard_remaps_to_survivors(self):
        pipeline, flows = l2_setup()
        seq = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        inj = FaultInjector(FaultSpec(shard=0, cmd="burst", when="before"))
        with engine(pipeline, inj, workers=3, max_respawns=0) as eng:
            bursts = [flows[i * 16:(i + 1) * 16] for i in range(3)]
            assert_equivalent(eng, seq, bursts)
            health = eng.health()
            assert health.degraded_shards == (0,)
            assert health.liveness == (False, True, True)
            assert health.live_workers == 2
            assert health.faults_detected == 1
            assert health.respawns == 0
            merged = eng.merged_burst_stats()
            assert merged.packets == sum(len(b) for b in bursts)

    def test_degraded_engine_survives_flow_mods(self):
        pipeline, flows = l2_setup(16, 24)
        seq = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        inj = FaultInjector(FaultSpec(shard=1, cmd="burst", when="after"))
        with engine(pipeline, inj, workers=3, max_respawns=0) as eng:
            assert_equivalent(eng, seq, [flows[:24]], sync=False)
            assert eng.health().degraded_shards == (1,)
            mods = [add_mod(0, priority=9, port=7, eth_dst=0x02_0000_BEEF)]
            seq.apply_flow_mods(mods)
            eng.apply_flow_mods(mods)
            assert eng.ping() == {0: 1, 2: 1}  # the dead slot stays dead
            assert_equivalent(eng, seq, [flows[:24]])

    def test_respawn_that_keeps_failing_degrades(self):
        pipeline, flows = l2_setup()
        seq = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        inj = FaultInjector(
            FaultSpec(shard=0, cmd="burst", when="before"),
            # Every replacement is stillborn: killed before its ready
            # handshake, so respawn burns down to degradation.
            FaultSpec(shard=0, cmd="spawn", when="before",
                      generation="respawn"),
        )
        with engine(pipeline, inj, workers=2, max_respawns=2) as eng:
            assert_equivalent(eng, seq, [flows[:32]])
            health = eng.health()
            assert health.degraded_shards == (0,)
            assert health.respawns == 2
            # original death + two stillborn replacements
            assert health.faults_detected == 3

    def test_losing_every_worker_raises(self):
        pipeline, flows = l2_setup()
        inj = FaultInjector(FaultSpec(shard=0, cmd="burst", when="before"))
        with engine(pipeline, inj, workers=1, max_respawns=0) as eng:
            with pytest.raises(ShardWorkerError, match="cannot degrade"):
                eng.process_burst([flows[0].copy()])


class TestMeteringExactness:
    def test_only_the_successful_attempt_is_absorbed(self):
        """A killed attempt's cycles never reach the caller's meter.

        With one worker, kill-after-execute on the second burst: the
        replica ran the burst and metered it, but the reply was lost.
        The replacement (fresh per-core meter — a freshly booted core)
        re-runs it. Expected total = burst 1 on the original replica +
        bursts 2 and 3 on a fresh replica, absorbed per-burst in order —
        bit-exact, with the killed attempt contributing nothing.
        """
        pipeline, flows = l2_setup()
        bursts = [flows[i * 16:(i + 1) * 16] for i in range(3)]
        inj = FaultInjector(
            FaultSpec(shard=0, cmd="burst", occurrence=2, when="after")
        )
        eng_meter = CycleMeter(XEON_E5_2620)
        with engine(pipeline, inj, workers=1, max_respawns=1) as eng:
            for pkts in bursts:
                eng.process_burst([p.copy() for p in pkts], eng_meter)
            assert eng.health().respawns == 1

        gen0 = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        gen1 = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        m0, m1 = CycleMeter(XEON_E5_2620), CycleMeter(XEON_E5_2620)
        expected = CycleMeter(XEON_E5_2620)
        plan = [(gen0, m0, bursts[0]), (gen1, m1, bursts[1]),
                (gen1, m1, bursts[2])]
        for replica, meter, pkts in plan:
            c0, l0 = meter.total_cycles, meter.cache.stats.llc_misses
            replica.process_burst([p.copy() for p in pkts], meter)
            expected.absorb(
                math.fsum([meter.total_cycles - c0]),
                packets=len(pkts),
                llc_misses=meter.cache.stats.llc_misses - l0,
            )
        assert eng_meter.total_cycles == expected.total_cycles  # bit-exact


class TestProcessBackend:
    """Real forked processes: os._exit(13) mid-run, engine unfazed."""

    def test_process_worker_kill_and_broadcast(self):
        pipeline, flows = l2_setup(16, 32)
        seq = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        inj = FaultInjector(
            FaultSpec(shard=1, cmd="burst", when="after"),
            FaultSpec(shard=0, cmd="mods", when="after"),
        )
        with ShardedESwitch(pipeline, workers=2, fault_injector=inj,
                            retry_backoff=0.001, rpc_deadline=30.0) as eng:
            if eng.backend != "process":
                pytest.skip("platform cannot fork worker processes")
            assert_equivalent(eng, seq, [flows[:32]], sync=False)
            mods = [add_mod(0, priority=9, port=7, eth_dst=0x02_0000_BEEF)]
            seq.apply_flow_mods(mods)
            eng.apply_flow_mods(mods)
            assert eng.ping() == {0: 1, 1: 1}
            assert_equivalent(eng, seq, [flows[:32]])
            health = eng.health()
            assert health.faults_detected == 2
            assert health.respawns == 2
            assert health.live_workers == 2


class TestFaultSpecValidation:
    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(shard=0, cmd="teleport")
        with pytest.raises(ValueError):
            FaultSpec(shard=0, kind="maim")
        with pytest.raises(ValueError):
            FaultSpec(shard=0, when="during")
        with pytest.raises(ValueError):
            FaultSpec(shard=0, occurrence=0)
        with pytest.raises(ValueError):
            FaultSpec(shard=0, seconds=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(shard=0, generation="sometimes")

    def test_generation_selectors(self):
        assert FaultSpec(shard=0).applies_to_generation(0)
        assert not FaultSpec(shard=0).applies_to_generation(1)
        respawn = FaultSpec(shard=0, generation="respawn")
        assert not respawn.applies_to_generation(0)
        assert respawn.applies_to_generation(1)
        assert respawn.applies_to_generation(3)
        every = FaultSpec(shard=0, generation=None)
        assert every.applies_to_generation(0)
        assert every.applies_to_generation(2)

    def test_arm_filters_by_shard_and_generation(self):
        inj = FaultInjector(
            FaultSpec(shard=0, cmd="burst"),
            FaultSpec(shard=1, cmd="mods"),
            FaultSpec(shard=0, cmd="spawn", generation="respawn"),
        )
        assert len(inj.arm(0, 0)._specs) == 1
        assert len(inj.arm(0, 1)._specs) == 1
        assert len(inj.arm(1, 0)._specs) == 1
        assert len(inj.arm(2, 0)._specs) == 0


class TestHealthSnapshot:
    def test_healthy_engine_health(self):
        pipeline, flows = l2_setup(8, 8)
        with ShardedESwitch(pipeline, workers=2, backend="thread") as eng:
            eng.process_burst([p.copy() for p in flows[:8]])
            health = eng.health()
            assert health.workers == 2
            assert health.live_workers == 2
            assert health.liveness == (True, True)
            assert health.faults_detected == 0
            assert not health.degraded
            d = health.as_dict()
            assert d["live_workers"] == 2 and d["degraded_shards"] == []
            assert d["epoch"] == 0

    def test_supervision_knob_validation(self):
        pipeline, _ = l2_setup(8, 8)
        with pytest.raises(ValueError):
            ShardedESwitch(pipeline, workers=1, backend="thread",
                           rpc_deadline=0.0)
        with pytest.raises(ValueError):
            ShardedESwitch(pipeline, workers=1, backend="thread",
                           max_retries=-1)
