"""Fig. 19: CPU scalability — aggregate packet rate vs processing cores.

Paper: measured on a slower 2.40 GHz Atom (the Xeon's NIC saturates with
two ESWITCH cores); L3 routing over 2K real-router prefixes, 100/10K/500K
active flows. "Both OVS and ESWITCH show strong linear CPU scaling … but
ESWITCH consistently outperforms OVS roughly 5-fold and the gap increases
with more flows."

The 500K-flow series is run at 100K here (packet materialization cost);
it sits in the same OVS regime (past the microflow cache).
"""

from figshared import fmt_flows, publish, render_table
from repro.core import ESwitch
from repro.ovs import OvsSwitch
from repro.simcpu.costs import DEFAULT_COSTS
from repro.simcpu.platform import ATOM_C2750
from repro.traffic import measure_multicore
from repro.usecases import l3

PREFIXES = 2_000
CORE_AXIS = (1, 2, 3, 4, 5)
FLOW_SERIES = (100, 10_000, 100_000)


def test_fig19_cpu_scalability(benchmark):
    _p, fib = l3.build(PREFIXES)
    results: dict[tuple[str, int], list[float]] = {}
    for n_flows in FLOW_SERIES:
        flows = l3.traffic(fib, n_flows)
        n_pkts = 4_000 if n_flows <= 10_000 else 2_500
        for name, make, shared, coherence in (
            ("ES", lambda: ESwitch.from_pipeline(l3.build(PREFIXES)[0]), False,
             DEFAULT_COSTS.eswitch_coherence_per_core),
            ("OVS", lambda: OvsSwitch(l3.build(PREFIXES)[0]), True,
             DEFAULT_COSTS.ovs_coherence_per_core),
        ):
            series = []
            for cores in CORE_AXIS:
                series.append(
                    measure_multicore(
                        make,
                        flows,
                        cores=cores,
                        n_packets=n_pkts,
                        warmup=min(n_flows + 500, 20_000),
                        platform=ATOM_C2750,
                        coherence_cycles_per_core=coherence,
                        shared_switch=shared,
                    )
                )
            results[(name, n_flows)] = series

    header = ["cores"] + [
        f"{sw}({fmt_flows(f)})" for sw in ("ES", "OVS") for f in FLOW_SERIES
    ]
    rows = []
    for i, cores in enumerate(CORE_AXIS):
        row = [cores]
        for sw in ("ES", "OVS"):
            for f in FLOW_SERIES:
                row.append(f"{results[(sw, f)][i] / 1e6:.2f}")
        rows.append(row)
    publish(
        "fig19_multicore",
        render_table(
            "Fig. 19: aggregate packet rate [Mpps] on the Atom platform "
            "(paper: linear, ~5x gap)",
            header,
            rows,
        ),
    )

    for f in FLOW_SERIES:
        es = results[("ES", f)]
        ovs = results[("OVS", f)]
        # Strong linear scaling for both switches.
        assert 3.2 < es[4] / es[0] < 5.5
        assert 2.8 < ovs[4] / ovs[0] < 5.5
        # ESWITCH leads at every core count.
        assert all(e > o for e, o in zip(es, ovs))
    # The gap grows with the flow count (paper: "the gap increases with
    # more flows"). The paper reports roughly 5x; our uniform Atom CPI
    # factor scales both switches alike, so the modeled gap is ~2.5x —
    # ordering and growth preserved (see EXPERIMENTS.md).
    gap_small = results[("ES", 100)][4] / results[("OVS", 100)][4]
    gap_large = results[("ES", 100_000)][4] / results[("OVS", 100_000)][4]
    assert gap_large > gap_small
    assert gap_large > 2.2

    flows = l3.traffic(fib, 100)
    benchmark(
        lambda: measure_multicore(
            lambda: ESwitch.from_pipeline(l3.build(PREFIXES)[0]),
            flows, cores=2, n_packets=200, warmup=50, platform=ATOM_C2750,
        )
    )
