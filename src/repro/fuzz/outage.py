"""The outage-parity harness: disconnect-reconnect vs never-disconnected.

Runs a scenario twice through a :class:`~repro.controller.session.
ControllerSession`-wrapped :class:`~repro.core.eswitch.ESwitch`:

* the **baseline** delivers every flow-mod batch in order over a
  reliable channel — the same schedule the differential matrix runs;
* the **outage run** takes the session dark (disconnect, then virtual
  time until the liveness timeout declares DOWN) for the scenario's
  ``outage`` window of mod batches. Each dark batch is submitted anyway
  and must come back as a typed ``CHANNEL_DOWN`` reject with nothing
  applied; the harness queues it, exactly like a controller holding
  undeliverable state for a dark switch. After the window the peer
  returns, the next echo round-trip is the evidence that resyncs the
  session, and the queued batches are re-delivered in their original
  order.

Parity is asserted where it is owed: **after convergence**. Verdicts
*during* the window are expected to diverge (the dark switch is serving
stale tables — that is what fail-standalone means); the final probe
burst after re-delivery must match the baseline verdict for verdict,
or the recovery path lost or reordered state.
"""

from __future__ import annotations

from repro.controller.channels import LossyChannel
from repro.controller.session import ControllerSession, SessionState
from repro.core import ESwitch


class _PuntSink:
    """A packet-in sink that only counts: the parity runs are proactive
    (the storm is the controller's state), so punts are observations."""

    def __init__(self) -> None:
        self.punts = 0

    def __call__(self, _packet_in) -> None:
        self.punts += 1


def _reliable_channel() -> LossyChannel:
    return LossyChannel(loss=0.0, delay_s=1e-3, jitter_s=0.0, seed=17)


def _session_run(scenario, dark: bool) -> dict:
    begin, end = scenario.outage if (dark and scenario.outage) else (-1, -1)
    switch = ESwitch.from_pipeline(scenario.build_pipeline())
    sink = _PuntSink()
    session = ControllerSession(
        switch, controller=sink, channel=_reliable_channel()
    )
    bursts: list[list] = []
    lost: list[list] = []
    rejected = 0
    mod_index = 0

    def redeliver() -> None:
        session.reconnect()
        # Recovery is evidence-based: the next echo round-trip after the
        # peer returns closes the outage (resync), never this call.
        while session.state is SessionState.DOWN:
            session.advance(session.echo_interval_s)
        while lost:
            reply = session.submit_flow_mods(lost.pop(0))
            assert reply, "re-delivered batch rejected after resync"

    for event in scenario.events:
        if "burst" in event:
            pkts = scenario.build_packets(event["burst"])
            bursts.append(
                [v.summary() for v in session.process_burst(pkts)]
            )
            continue
        if "tick" in event:
            continue  # this class schedules no expiry
        if mod_index == begin:
            session.disconnect()
            # Echo silence until liveness declares the outage.
            while session.state is SessionState.UP:
                session.advance(session.echo_interval_s)
        if mod_index == end and lost:
            redeliver()
        mods = scenario.build_mods(event["mods"], switch.pipeline)
        if begin <= mod_index < end:
            reply = session.submit_flow_mods(mods)
            assert not reply, "a DOWN session accepted a flow-mod batch"
            rejected += 1
            lost.append(mods)
        else:
            reply = session.submit_flow_mods(mods)
            assert reply, "baseline-path batch rejected"
        mod_index += 1
    if lost:  # window ran to the end of the storm
        redeliver()

    return {
        "bursts": bursts,
        "final": bursts[-1] if bursts else [],
        "rejected": rejected,
        "punts": sink.punts,
        "outages": session.outages,
        "resyncs": session.resyncs,
    }


def run_outage_parity(scenario) -> dict:
    """Both runs + the convergence-parity verdict (see module doc)."""
    if not scenario.outage:
        raise ValueError("scenario has no outage window")
    baseline = _session_run(scenario, dark=False)
    outage = _session_run(scenario, dark=True)
    diverged_during = [
        i
        for i, (a, b) in enumerate(zip(baseline["bursts"], outage["bursts"]))
        if a != b and i < len(baseline["bursts"]) - 1
    ]
    return {
        "parity": baseline["final"] == outage["final"],
        "final_packets": len(baseline["final"]),
        "diverged_bursts_during": diverged_during,
        "rejected_batches": outage["rejected"],
        "baseline": {k: baseline[k] for k in ("punts", "outages", "resyncs")},
        "outage": {k: outage[k] for k in ("punts", "outages", "resyncs")},
    }
