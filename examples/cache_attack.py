#!/usr/bin/env python3
"""The cache-overflow denial-of-service scenario (Sections 2.3 and 4.3).

A single misbehaving tenant sprays high-entropy flows (a port scan) through
a shared cloud gateway. On a flow-caching switch the scan evicts every
honest tenant's cache entries and drags all traffic onto the slow path —
"a full-blown denial of service to the entire user population". ESWITCH
has no flow cache to overflow; its compiled datapath is insensitive to
flow diversity.

Run:  python examples/cache_attack.py
"""

import random

from repro.core import ESwitch
from repro.ovs import OvsSwitch
from repro.packet import PacketBuilder
from repro.simcpu.platform import XEON_E5_2620
from repro.simcpu.recorder import CycleMeter
from repro.traffic import FlowSet
from repro.usecases import gateway


def honest_flows(fib, n: int) -> FlowSet:
    return gateway.traffic(fib, n)


def attack_flows(n: int, seed: int = 99) -> FlowSet:
    """A subscriber scanning the Internet: one user, high-entropy 5-tuples.

    Every packet lands in a different destination /24 aggregate, so each
    one mints a fresh megaflow — the cache-overflow pattern of [29, 35].
    """
    rng = random.Random(seed)

    def factory(i: int, _rng) -> object:
        dst = rng.randrange(1 << 24, 223 << 24)
        return (
            PacketBuilder(in_port=gateway.ACCESS_PORT)
            .eth(src="02:00:00:00:06:66", dst="02:00:00:00:02:02")
            .vlan(vid=gateway.ce_vlan(0))
            .ipv4(src="10.0.0.1", dst=f"{dst >> 24}.{(dst >> 16) & 255}."
                                      f"{(dst >> 8) & 255}.{dst & 255}")
            .tcp(src_port=rng.randrange(1024, 65535), dst_port=i % 65535 + 1)
            .build()
        )

    return FlowSet.build(n, factory, seed=seed, name="portscan")


def run(switch, honest: FlowSet, attack: "FlowSet | None", n_packets: int = 16_000) -> float:
    """Measured Mpps for honest traffic, optionally interleaved 3:1 with attack."""
    meter = CycleMeter(XEON_E5_2620)
    # Warm up on honest traffic only.
    for i in range(max(4_000, len(honest))):
        meter.begin_packet()
        switch.process(honest[i % len(honest)].copy(), meter)
        meter.end_packet()
    meter.total_cycles = 0.0
    meter.packets = 0

    honest_cycles = 0.0
    honest_count = attack_i = 0
    for i in range(n_packets):
        if attack is not None and i % 4 != 0:
            meter.begin_packet()
            switch.process(attack[attack_i % len(attack)].copy(), meter)
            meter.end_packet()
            attack_i += 1
            continue
        meter.begin_packet()
        switch.process(honest[i % len(honest)].copy(), meter)
        honest_cycles += meter.end_packet()
        honest_count += 1
    return XEON_E5_2620.freq_hz / (honest_cycles / honest_count) / 1e6


def main() -> None:
    _, fib = gateway.build(n_ce=10, users_per_ce=20, n_prefixes=5_000)
    honest = honest_flows(fib, 2_000)
    attack = attack_flows(30_000)

    print("honest tenants' packet rate (Mpps), before and during the attack\n")
    print(f"{'switch':>10} {'baseline':>10} {'under attack':>14} {'degradation':>12}")
    for name, factory in (
        ("OVS", lambda: OvsSwitch(gateway.build(n_ce=10, users_per_ce=20, n_prefixes=5_000)[0],
                                  megaflow_capacity=8_192)),
        ("ESWITCH", lambda: ESwitch.from_pipeline(
            gateway.build(n_ce=10, users_per_ce=20, n_prefixes=5_000)[0])),
    ):
        base = run(factory(), honest, None)
        hit = run(factory(), honest, attack)
        print(f"{name:>10} {base:>9.2f}M {hit:>13.2f}M {100 * (1 - hit / base):>10.1f}%")
    print(
        "\nThe attacker's port scan overflows OVS's flow caches, evicting the"
        "\nhonest tenants' entries: their packets fall to the slow path. The"
        "\ncompiled ESWITCH datapath has no shared cache to pollute."
    )


if __name__ == "__main__":
    main()
