"""Scriptable session-layer fault injection for the fabric.

The shard-level :class:`~repro.parallel.faults.FaultInjector` made
worker crashes deterministic and replayable; this module extends the
same idiom one layer up, to the control plane. A
:class:`FabricFaultPlan` is pure data — frozen specs, orderable,
armable — and an armed plan is driven entirely by virtual time from the
supervisor's tick, so every outage scenario replays bit-for-bit.

Fault kinds (the fault-plan matrix of DESIGN §12):

``blackout``
    The controller peer goes silent for the window
    (:meth:`ControllerSession.disconnect`): echoes go unanswered, the
    liveness timeout declares an outage, the leaf degrades to its §6.4
    fail mode. Recovery is evidence-based after the window closes.
``latency_storm``
    The channel's base delay and jitter are scaled by ``magnitude`` for
    the window — the control plane slows but stays up; punt latency
    p99 is where this shows.
``keepalive_eclipse``
    The channel eats *every* message for the window (loss pinned to 1).
    Distinct from a blackout: the peer is fine, the wire is not — but
    §6.4 cannot tell the difference, which is the point.
``controller_stall``
    The controller process wedges: delivered punts are dropped on the
    floor at the controller face. The channel and echoes stay healthy,
    so no outage is declared — admission just stops, the quiet failure
    mode a served-fraction SLO exists to catch. Target ``"*"`` stalls
    every leaf's face at once.
"""

from __future__ import annotations

from dataclasses import dataclass

FAULT_KINDS = (
    "blackout",
    "latency_storm",
    "keepalive_eclipse",
    "controller_stall",
)


@dataclass(frozen=True, order=True)
class FabricFaultSpec:
    """One scheduled fault window, pure data.

    Attributes:
        at_s: virtual time the fault begins.
        target: switch name (``leaf0``, ``spine1``, …) or ``"*"`` for
            every leaf (``controller_stall`` only).
        kind: one of :data:`FAULT_KINDS`.
        duration_s: window length; the fault is healed at
            ``at_s + duration_s``.
        magnitude: ``latency_storm`` delay/jitter multiplier.
    """

    at_s: float
    target: str
    kind: str
    duration_s: float = 5.0
    magnitude: float = 10.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.at_s < 0 or self.duration_s <= 0:
            raise ValueError("fault windows need at_s >= 0, duration > 0")
        if self.magnitude <= 0:
            raise ValueError("magnitude must be positive")
        if self.target == "*" and self.kind != "controller_stall":
            raise ValueError('target "*" is only valid for controller_stall')


@dataclass(frozen=True)
class FabricFaultPlan:
    """An ordered, immutable set of fault windows; arm against a fabric."""

    specs: tuple[FabricFaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(sorted(self.specs)))

    def arm(self, fabric) -> "ArmedFabricFaults":
        return ArmedFabricFaults(fabric, self.specs)

    @property
    def horizon_s(self) -> float:
        """Virtual time by which every window has opened and closed."""
        return max(
            (s.at_s + s.duration_s for s in self.specs), default=0.0
        )


@dataclass
class _ActiveFault:
    spec: FabricFaultSpec
    ends_at_s: float
    undo: object  # zero-arg callable restoring pre-fault state


class ArmedFabricFaults:
    """A fault plan bound to one fabric, driven by :meth:`tick`.

    ``tick(now_s)`` opens every window whose start has passed and closes
    every window whose end has; both edges are idempotent and logged
    (``log`` holds ``(t, event, target, kind)`` tuples for the soak
    report). Call it from the same loop that advances fabric time —
    BEFORE the advance for windows to open at their nominal timestamps.
    """

    def __init__(self, fabric, specs: tuple[FabricFaultSpec, ...]):
        self.fabric = fabric
        self._pending: list[FabricFaultSpec] = sorted(specs)
        self._active: list[_ActiveFault] = []
        self.fired = 0
        self.healed = 0
        self.log: list[tuple[float, str, str, str]] = []

    @property
    def exhausted(self) -> bool:
        return not self._pending and not self._active

    def tick(self, now_s: float) -> None:
        # Close first so a back-to-back window on the same target starts
        # from a healed state.
        still = []
        for active in self._active:
            if active.ends_at_s <= now_s:
                active.undo()
                self.healed += 1
                self.log.append(
                    (now_s, "healed", active.spec.target, active.spec.kind)
                )
            else:
                still.append(active)
        self._active = still
        while self._pending and self._pending[0].at_s <= now_s:
            spec = self._pending.pop(0)
            undo = self._start(spec)
            self._active.append(
                _ActiveFault(spec, spec.at_s + spec.duration_s, undo)
            )
            self.fired += 1
            self.log.append((now_s, "fired", spec.target, spec.kind))

    # -- per-kind start/undo ----------------------------------------------

    def _start(self, spec: FabricFaultSpec):
        if spec.kind == "blackout":
            session = self.fabric.session_of(spec.target)
            session.disconnect()
            return session.reconnect
        if spec.kind == "latency_storm":
            channel = self.fabric.session_of(spec.target).channel
            delay, jitter = channel.delay_s, channel.jitter_s
            channel.delay_s = delay * spec.magnitude
            channel.jitter_s = jitter * spec.magnitude

            def undo() -> None:
                channel.delay_s = delay
                channel.jitter_s = jitter

            return undo
        if spec.kind == "keepalive_eclipse":
            channel = self.fabric.session_of(spec.target).channel
            loss = channel.loss
            # random() < 1.0 is always true: a total, deterministic
            # eclipse (no RNG draw can escape it).
            channel.loss = 1.0

            def undo() -> None:
                channel.loss = loss

            return undo
        # controller_stall
        faces = [
            leaf.face
            for leaf in self.fabric.leaves
            if spec.target in ("*", leaf.name)
        ]
        if not faces:
            raise KeyError(spec.target)
        for face in faces:
            face.stalled = True

        def undo() -> None:
            for face in faces:
                face.stalled = False

        return undo


NO_FABRIC_FAULTS = FabricFaultPlan(())
