"""Fig. 17: total time to set up the load-balancer pipeline, CLI vs
controller channel, as the number of web services grows.

Paper: "Both switches scale linearly, but in general it takes just one
fifth the time for ESWITCH to set up the use case than for OVS, when using
the CLI tool. With the controller the two perform similarly" — i.e. the
controller, not the switch, bottlenecks update rates.

The paper sweeps 1..100K services; this harness stops at 2K (the scaling
is asserted to be linear, so the tail adds wall-clock without information).
"""

from figshared import fmt_flows, publish, render_table
from repro.controller import CLI_CHANNEL, CONTROLLER_CHANNEL, setup_time
from repro.core import ESwitch
from repro.openflow.flow_table import FlowTable
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.pipeline import Pipeline
from repro.ovs import OvsSwitch
from repro.usecases import loadbalancer as lb

SERVICE_AXIS = (1, 10, 100, 1_000, 2_000)


def lb_mods(n_services):
    mods = []
    for entry in lb.build_single_table(n_services).table(0):
        mods.append(
            FlowMod(FlowModCommand.ADD, 0, entry.match, priority=entry.priority,
                    instructions=entry.instructions)
        )
    return mods


def empty_switch_es():
    return ESwitch.from_pipeline(Pipeline([FlowTable(0)]))


def empty_switch_ovs():
    return OvsSwitch(Pipeline([FlowTable(0)]))


def test_fig17_setup_time(benchmark):
    rows = []
    series: dict[str, list[float]] = {k: [] for k in
                                      ("ES-CLI", "ES-ctrl", "OVS-CLI", "OVS-ctrl")}
    for n_svc in SERVICE_AXIS:
        mods = lb_mods(n_svc)
        t = {
            "ES-CLI": setup_time(empty_switch_es(), mods, CLI_CHANNEL),
            "OVS-CLI": setup_time(empty_switch_ovs(), lb_mods(n_svc), CLI_CHANNEL),
            "ES-ctrl": setup_time(empty_switch_es(), lb_mods(n_svc),
                                  CONTROLLER_CHANNEL),
            "OVS-ctrl": setup_time(empty_switch_ovs(), lb_mods(n_svc),
                                   CONTROLLER_CHANNEL),
        }
        for key, value in t.items():
            series[key].append(value)
        rows.append(
            (fmt_flows(n_svc), len(mods))
            + tuple(f"{t[k]:.4f}" for k in ("ES-CLI", "OVS-CLI", "ES-ctrl", "OVS-ctrl"))
        )
    publish(
        "fig17_updates",
        render_table(
            "Fig. 17: pipeline setup time [s] (paper: ES(CLI) ~5x faster; "
            "ctrl similar)",
            ("services", "flow-mods", "ES-CLI", "OVS-CLI", "ES-ctrl", "OVS-ctrl"),
            rows,
        ),
    )

    # The CLI gap: OVS takes several times longer (paper: ~5x).
    big = len(SERVICE_AXIS) - 1
    assert 3 < series["OVS-CLI"][big] / series["ES-CLI"][big] < 10
    # The controller channel levels the field (paper: "similarly").
    assert 0.5 < series["OVS-ctrl"][big] / series["ES-ctrl"][big] < 2
    # Linear scaling for every series (double services ~ double time).
    for key, values in series.items():
        ratio = values[-1] / values[-2]
        assert 1.5 < ratio < 2.6, (key, ratio)

    benchmark(lambda: setup_time(empty_switch_es(), lb_mods(10), CLI_CHANNEL))
