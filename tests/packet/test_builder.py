"""Tests for the fluent packet builder."""

from repro.net.addresses import ip_to_int, mac_to_int
from repro.packet import PacketBuilder, headers as hdr
from repro.packet.parser import parse
from repro.openflow.fields import field_by_name


def field(view, name):
    return field_by_name(name).extract(view)


class TestBuilder:
    def test_minimum_frame_padding(self):
        pkt = PacketBuilder().eth().build()
        assert len(pkt) == 64

    def test_custom_padding(self):
        pkt = PacketBuilder(pad_to=128).eth().ipv4().build()
        assert len(pkt) == 128

    def test_in_port(self):
        assert PacketBuilder(in_port=7).eth().build().in_port == 7

    def test_fields_land_where_expected(self):
        pkt = (
            PacketBuilder()
            .eth(src="02:00:00:00:00:0a", dst="02:00:00:00:00:0b")
            .ipv4(src="10.1.2.3", dst="192.0.2.9", ttl=17, dscp=3)
            .tcp(src_port=4444, dst_port=80)
            .build()
        )
        view = parse(pkt)
        assert field(view, "eth_src") == mac_to_int("02:00:00:00:00:0a")
        assert field(view, "eth_dst") == mac_to_int("02:00:00:00:00:0b")
        assert field(view, "eth_type") == hdr.ETH_TYPE_IPV4
        assert field(view, "ipv4_src") == ip_to_int("10.1.2.3")
        assert field(view, "ipv4_dst") == ip_to_int("192.0.2.9")
        assert field(view, "ip_dscp") == 3
        assert field(view, "tcp_src") == 4444
        assert field(view, "tcp_dst") == 80

    def test_vlan_tagging_fixes_ethertypes(self):
        pkt = PacketBuilder().eth().vlan(vid=42, pcp=6).ipv4().udp(dst_port=53).build()
        view = parse(pkt)
        assert field(view, "vlan_vid") == 42
        assert field(view, "vlan_pcp") == 6
        # The *effective* eth_type skips the tag per the OF spec.
        assert field(view, "eth_type") == hdr.ETH_TYPE_IPV4
        assert field(view, "udp_dst") == 53

    def test_arp_packet(self):
        pkt = PacketBuilder().eth().arp(op=2, spa="10.0.0.1", tpa="10.0.0.2").build()
        view = parse(pkt)
        assert field(view, "eth_type") == hdr.ETH_TYPE_ARP
        assert field(view, "arp_op") == 2
        assert field(view, "arp_spa") == ip_to_int("10.0.0.1")
        assert field(view, "arp_tpa") == ip_to_int("10.0.0.2")

    def test_proto_autoset_from_l4(self):
        view = parse(PacketBuilder().eth().ipv4().udp().build())
        assert field(view, "ip_proto") == hdr.IP_PROTO_UDP
        view = parse(PacketBuilder().eth().ipv4().icmp().build())
        assert field(view, "ip_proto") == hdr.IP_PROTO_ICMP

    def test_headers_stack_roundtrip(self):
        pkt = PacketBuilder().eth().vlan(vid=5).ipv4().tcp().build()
        stack = pkt.headers()
        kinds = [type(h).__name__ for h in stack]
        assert kinds == ["Ethernet", "Vlan", "IPv4", "TCP"]

    def test_payload(self):
        pkt = PacketBuilder().eth().ipv4().udp().payload(b"hello").build()
        assert b"hello" in bytes(pkt.data)

    def test_copy_is_independent(self):
        pkt = PacketBuilder(in_port=3).eth().ipv4().tcp().build()
        clone = pkt.copy()
        clone.data[0] = 0xFF
        clone.in_port = 9
        assert pkt.data[0] != 0xFF
        assert pkt.in_port == 3
