"""Ablation: the direct-code fallback constant (Section 4.3 calibration).

The paper fixes the threshold at 4 after Fig. 9. This bench sweeps the
config knob across a workload mix of small tables and verifies the
measured per-lookup cost is minimized at (or indistinguishably near) 4 —
i.e. the calibrated default is actually the right one under this repo's
cost model too.
"""

from figshared import publish, render_table
from repro.core.analysis import CompileConfig, TemplateKind
from repro.core.codegen import compile_table
from repro.openflow.actions import Output
from repro.openflow.fields import field_by_name
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.match import Match
from repro.packet import PacketBuilder
from repro.packet.parser import parse
from repro.simcpu.platform import XEON_E5_2620
from repro.simcpu.recorder import CycleMeter

#: Table-size mix: mostly small tables, as real pipelines have.
TABLE_SIZES = (1, 2, 3, 4, 5, 6, 8)
THRESHOLDS = (0, 1, 2, 4, 6, 8)


def make_table(n):
    t = FlowTable(0)
    for i in range(n):
        t.add(FlowEntry(Match(eth_dst=0x4000 + i), priority=1, actions=[Output(1)]))
    return t


def mean_lookup_cost(threshold: int) -> float:
    """Average metered lookup cycles across the table mix (hit last entry)."""
    total = 0.0
    samples = 0
    for size in TABLE_SIZES:
        compiled = compile_table(
            make_table(size), CompileConfig(direct_threshold=threshold)
        )
        pkt = PacketBuilder().eth(dst=0x4000 + size - 1).build()
        view = parse(pkt)
        etype = field_by_name("eth_type").extract(view) or 0
        meter = CycleMeter(XEON_E5_2620)
        for _ in range(32):  # warm
            compiled.fn(pkt.data, pkt, view.l3, view.l4, view.proto, etype, view.l4_proto, meter)
        meter.reset()
        for _ in range(64):
            meter.begin_packet()
            compiled.fn(pkt.data, pkt, view.l3, view.l4, view.proto, etype, view.l4_proto, meter)
            meter.end_packet()
        total += meter.mean_cycles_per_packet
        samples += 1
    return total / samples


def test_ablation_direct_threshold(benchmark):
    costs = {thr: mean_lookup_cost(thr) for thr in THRESHOLDS}
    rows = [(thr, f"{c:.2f}") for thr, c in costs.items()]
    publish(
        "ablation_direct_threshold",
        render_table(
            "Ablation: direct-code threshold vs mean lookup cycles "
            "(paper fixes 4)",
            ("threshold", "mean cycles/lookup"),
            rows,
        ),
    )

    best = min(costs, key=costs.__getitem__)
    # The calibrated default (4) is optimal or within a cycle of optimal.
    assert costs[4] <= costs[best] + 1.0
    # Extremes are measurably worse: all-hash loses on tiny tables,
    # all-direct loses on larger ones.
    assert costs[0] > costs[4]
    assert costs[8] > costs[4]

    # Template selection respects the knob.
    assert (
        compile_table(make_table(6), CompileConfig(direct_threshold=8)).kind
        is TemplateKind.DIRECT
    )
    assert (
        compile_table(make_table(6), CompileConfig(direct_threshold=4)).kind
        is TemplateKind.HASH
    )

    benchmark(lambda: mean_lookup_cost(4))
