"""Flow-key extraction (the OVS ``miniflow_extract`` analogue).

OVS parses every received packet once into a flow key covering all match
fields; the microflow cache exact-matches the *entire* key ("essentially
any change in the packet header inside an established flow (e.g., the IP
TTL field) results in a cache miss", Section 2.2), so the key includes
volatile fields like TTL that no OpenFlow rule may even reference.
"""

from __future__ import annotations

from typing import Mapping

from repro.packet import parser as pp
from repro.packet.packet import Packet
from repro.packet.parser import ParsedPacket
from repro.openflow.fields import FIELDS

#: Fields with wire support, in registry order — the columns of a flow key.
KEY_FIELDS: tuple[str, ...] = tuple(
    f.name
    for f in FIELDS
    if f.name
    in {
        "in_port",
        "metadata",
        "eth_dst",
        "eth_src",
        "eth_type",
        "vlan_vid",
        "vlan_pcp",
        "ip_dscp",
        "ip_ecn",
        "ip_proto",
        "ipv4_src",
        "ipv4_dst",
        "tcp_src",
        "tcp_dst",
        "udp_src",
        "udp_dst",
        "icmpv4_type",
        "icmpv4_code",
        "arp_op",
        "arp_spa",
        "arp_tpa",
        "arp_sha",
        "arp_tha",
        "ipv6_src",
        "ipv6_dst",
        "ipv6_flabel",
        "icmpv6_type",
        "icmpv6_code",
        "tunnel_id",
    }
)

_EXTRACTORS = [(f.name, f.extract) for f in FIELDS if f.name in set(KEY_FIELDS)]

#: Microflow keys additionally cover volatile non-OXM header state.
EMC_KEY_FIELDS: tuple[str, ...] = KEY_FIELDS + ("ip_ttl",)


def _extract_ttl(view: ParsedPacket) -> "int | None":
    if not view.proto & pp.PROTO_IPV4:
        return None
    return view.pkt.data[view.l3 + 8]


def extract_key(view: ParsedPacket) -> dict[str, "int | None"]:
    """The full flow key: every supported field's value (None = absent)."""
    return {name: extract(view) for name, extract in _EXTRACTORS}


def emc_key(view: ParsedPacket, key: "Mapping[str, int | None] | None" = None) -> tuple:
    """The exact-match (microflow) key tuple, TTL included."""
    if key is None:
        key = extract_key(view)
    return tuple(key[name] for name in KEY_FIELDS) + (_extract_ttl(view),)


def parse_and_key(pkt: Packet) -> tuple[ParsedPacket, dict[str, "int | None"]]:
    """One-stop parse + key extraction, as ``miniflow_extract`` does."""
    view = pp.parse(pkt)
    return view, extract_key(view)
