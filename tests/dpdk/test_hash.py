"""Tests for the collision-free hash."""

from hypothesis import given, settings, strategies as st

from repro.dpdk.hash import CollisionFreeHash, SLOTS_PER_LINE


class TestBasics:
    def test_empty(self):
        h = CollisionFreeHash()
        assert h.get(42) is None
        assert len(h) == 0
        assert 42 not in h

    def test_insert_get(self):
        h = CollisionFreeHash()
        h.insert(1, "a")
        h.insert((2, 3), "b")
        assert h.get(1) == "a"
        assert h.get((2, 3)) == "b"
        assert (2, 3) in h

    def test_update_value(self):
        h = CollisionFreeHash()
        h.insert(1, "a")
        h.insert(1, "b")
        assert h.get(1) == "b"
        assert len(h) == 1

    def test_remove(self):
        h = CollisionFreeHash({1: "a", 2: "b"})
        assert h.remove(1)
        assert h.get(1) is None
        assert h.get(2) == "b"
        assert not h.remove(1)

    def test_constructor_items(self):
        h = CollisionFreeHash({i: i * 2 for i in range(50)})
        assert all(h.get(i) == i * 2 for i in range(50))

    def test_default_value(self):
        assert CollisionFreeHash().get(9, "dflt") == "dflt"


class TestCollisionFreedom:
    def test_no_two_keys_share_a_slot(self):
        h = CollisionFreeHash({(i, i ^ 0xFF): i for i in range(500)})
        slots = set()
        for key in h:
            _value, line = h.get_traced(key)
            index = None
            # Recover the slot by probing; get_traced reports the line.
            slots.add(line * SLOTS_PER_LINE)  # lines are enough: uniqueness
        # Every lookup is a single probe: the traced value always matches.
        for key in h:
            value, _ = h.get_traced(key)
            assert value == h.get(key)

    def test_oversizing(self):
        h = CollisionFreeHash({i: i for i in range(100)})
        assert h.slot_count >= 4 * 100

    def test_rebuild_counter_increases_on_collision(self):
        h = CollisionFreeHash()
        before = h.rebuild_count
        for i in range(2000):
            h.insert(i, i)
        assert h.rebuild_count > before

    def test_forced_rebuild_preserves_content(self):
        h = CollisionFreeHash({i: str(i) for i in range(64)})
        h.rebuild()
        assert all(h.get(i) == str(i) for i in range(64))


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(st.dictionaries(st.integers(0, 1 << 48), st.integers(), max_size=200))
    def test_behaves_like_dict(self, items):
        h = CollisionFreeHash()
        for k, v in items.items():
            h.insert(k, v)
        assert len(h) == len(items)
        for k, v in items.items():
            assert h.get(k) == v

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.booleans()), min_size=1, max_size=120
        )
    )
    def test_insert_remove_sequence(self, ops):
        h = CollisionFreeHash()
        model: dict = {}
        for key, is_insert in ops:
            if is_insert:
                h.insert(key, key * 7)
                model[key] = key * 7
            else:
                assert h.remove(key) == (key in model)
                model.pop(key, None)
        for key in range(51):
            assert h.get(key) == model.get(key)
