"""Whole-pipeline fusion: link the compiled tables into one code object.

The trampoline (:mod:`repro.core.datapath`) resolves every ``goto_table``
through a mutable dict so a rebuilt table can be swapped in atomically
(Section 3.4). That flexibility costs a dict lookup, a generic function
call, and Outcome unboxing at every table hop — interpreter dispatch the
paper's linked machine code never executes: there, linking "atomically
redirect[s] all referring goto_table jumps to the address of the new
code" (Section 3.3–3.4) and the pipeline runs as one straight-line
instruction stream.

:func:`fuse_datapath` reproduces that last linking step. It stitches the
per-table generated sources into **one** ``compile()``\\ d driver:

* ``goto_table`` becomes a local jump — an ``if tid == N`` dispatch over
  compile-time-known table ids, with the table bodies **textually
  inlined** where the emitter allows (direct, hash, LPM, range) and a
  closure-bound direct call otherwise (linked list, whose generated body
  returns from inside a loop);
* parser dispatch, ethertype extraction, the first-table id, and every
  cost-book constant are baked in as literals;
* every ``m.charge``/``m.touch`` atom of the trampoline path is preserved
  **literally**, in the same order, so modeled cycles stay bit-identical
  to the unfused pipeline — fusion buys real wall-clock, not model drift;
* a second driver variant specialized for :data:`~repro.simcpu.recorder.
  NULL_METER` drops the (no-op) metering calls entirely, which is where
  the functional-mode speedup comes from.

Validity is governed by :attr:`CompiledDatapath.generation`: ``install``/
``uninstall``/``set_parser_layer`` (and every applied flow-mod, via
:class:`~repro.core.eswitch.ESwitch`) bump it, and the datapath lazily
re-fuses on the next packet — off the update critical path, with the
trampoline serving the window in between, so the atomic-swap update
semantics are untouched.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.analysis import TemplateKind
from repro.core.outcome import Outcome
from repro.openflow.actions import Output
from repro.openflow.fields import field_by_name
from repro.openflow.pipeline import MAX_TABLE_HOPS, PipelineError, Verdict
from repro.simcpu.recorder import NULL_METER

if TYPE_CHECKING:
    from repro.core.datapath import CompiledDatapath


class FuseError(Exception):
    """Raised when a datapath cannot be fused (the trampoline still runs)."""


#: Templates whose generated bodies can be textually inlined: straight-line
#: code whose ``return`` statements never sit inside a loop, so they rewrite
#: mechanically to ``out = ...; break`` under a one-shot ``while True``.
#: The linked list template returns from inside its entry loop and is
#: linked by closure-bound direct call instead — as is any *data-driven*
#: direct table (the source-budget fallback loops over a closure array,
#: so the same inside-a-loop caveat applies) and any body that would push
#: the cumulative inlined source past ``fuse_source_budget``.
INLINABLE = frozenset(
    {TemplateKind.DIRECT, TemplateKind.HASH, TemplateKind.LPM, TemplateKind.RANGE}
)

_IDENT = re.compile(r"\b[A-Za-z_][A-Za-z0-9_]*\b")
_RETURN = re.compile(r"^(\s*)return\s+(.+)$")


@dataclass
class FusedPipeline:
    """One datapath generation's fused drivers."""

    generation: int
    source: str
    namespace: dict
    table_ids: tuple[int, ...]
    inlined_ids: tuple[int, ...]
    #: ``(pkt, meter) -> Verdict`` — metered scalar driver.
    process: Callable
    #: ``(pkt) -> Verdict`` — NullMeter scalar driver (atoms elided).
    process_null: Callable
    #: ``(pkts, meter, on_verdict) -> (verdicts, resume)`` where ``resume``
    #: is -1 when the whole burst ran fused, else the index of the first
    #: unprocessed packet (state changed under us: the caller finishes the
    #: burst on the trampoline, which re-reads the live datapath).
    burst: Callable
    #: ``(pkts, on_verdict) -> (verdicts, resume)`` — NullMeter variant.
    burst_null: Callable

    def is_current(self, datapath: "CompiledDatapath") -> bool:
        """Whether this driver still serves the datapath's generation.

        The multi-replica sync contract: a shard replica is "standing"
        for an epoch exactly when its datapath's fused driver exists and
        ``is_current`` holds — the sharded engine's update barrier waits
        for that state on every worker before releasing the next burst,
        so no two replicas ever answer the same burst from different
        pipeline generations.
        """
        return self.generation == datapath.generation


def _table_outcomes(compiled) -> "list[Outcome] | None":
    """Every Outcome a table lookup can return, or None if unknowable.

    Outcomes are compile-time constants: they live in the generated
    namespace (``_O*``, ``_MISS``, the LPM ``_OUT`` list, the linked-list
    ``_ENTRIES`` tuples) or inside the hash store. Incremental updates
    mutate those same containers and bump the generation, so a re-fuse
    always re-reads the current set.
    """
    namespace = getattr(compiled, "namespace", None)
    if not isinstance(namespace, dict):
        return None
    found: list[Outcome] = []

    def visit(value: object, depth: int = 0) -> None:
        if isinstance(value, Outcome):
            found.append(value)
        elif depth < 2 and isinstance(value, (list, tuple)):
            for item in value:
                visit(item, depth + 1)

    for value in namespace.values():
        visit(value)
    visit(getattr(compiled, "miss", None))
    store = getattr(compiled, "hash_store", None)
    if store is not None:
        for value in store._items.values():
            visit(value)
    return found


def _pipeline_facts(dp: "CompiledDatapath") -> "tuple[bool, dict | None]":
    """Whole-datapath facts proven from the enumerated outcome set.

    Returns ``(acyclic, flags)``:

    * ``acyclic`` — no chain of static ``goto`` targets can revisit a
      table, so the fused driver may drop the per-hop loop guard (the
      trampoline's ``MAX_TABLE_HOPS`` counter exists only to catch goto
      cycles, which a DAG cannot have);
    * ``flags`` — which driver machinery any outcome actually needs
      (``write`` action sets, ``meta``\\ data writes, flow ``meter``
      checks); the emitter elides what no outcome can trigger — the
      specialization move of the paper, applied to our own driver.

    Any table whose outcomes cannot be enumerated makes both answers
    conservative: ``(False, None)`` keeps the fully generic driver.
    """
    tables: dict[int, list[Outcome]] = {}
    for tid, compiled in dp.trampoline.items():
        outcomes = _table_outcomes(compiled)
        if outcomes is None:
            return False, None
        tables[tid] = outcomes
    edges = {
        tid: {o.goto for o in outcomes if o.goto is not None}
        for tid, outcomes in tables.items()
    }
    state: dict[int, int] = {}  # 1 = on stack, 2 = done

    def dfs(tid: int) -> bool:
        state[tid] = 1
        for nxt in edges.get(tid, ()):
            mark = state.get(nxt)
            if mark == 1:
                return False
            if mark is None and nxt in edges and not dfs(nxt):
                return False
        state[tid] = 2
        return True

    acyclic = all(state.get(tid) == 2 or dfs(tid) for tid in edges)
    everything = [o for outcomes in tables.values() for o in outcomes]
    flags = {
        # clear_actions without any write_actions anywhere is a no-op on
        # an always-empty action set, so "write" alone gates the machinery.
        "write": any(o.write_actions for o in everything),
        "meta": any(o.metadata_write is not None for o in everything),
        "meter": any(o.meter is not None for o in everything),
    }
    return acyclic, flags


def _rename_body(body: list[str], mapping: dict[str, str]) -> list[str]:
    """Token-rename identifiers in generated source lines (one pass, so
    ``_O1``/``_O10`` style prefix collisions cannot mis-rewrite)."""

    def sub(match: "re.Match[str]") -> str:
        return mapping.get(match.group(0), match.group(0))

    return [_IDENT.sub(sub, line) for line in body]


def _inline_body(compiled, prefix: str, namespace: dict, null: bool) -> list[str]:
    """One table's generated body, rewritten for inlining.

    ``return X`` becomes ``out = X`` + ``break`` (the caller wraps the body
    in a one-iteration ``while True``), the table's namespace constants are
    re-bound under ``prefix`` into the fused namespace, and ``m`` becomes
    the driver's ``meter``. With ``null=True`` the metering atoms (and the
    LPM trace loop that exists only to feed them) are dropped — they are
    no-ops on a NullMeter.
    """
    lines = compiled.source.rstrip("\n").split("\n")
    if not lines or not lines[0].startswith("def _match("):
        raise FuseError(
            f"table {compiled.table_id}: unexpected generated source shape"
        )
    body = lines[1:]
    if null:
        kept = []
        for line in body:
            stripped = line.strip()
            if stripped.startswith(("m.charge(", "m.touch(")):
                continue
            if stripped == "for _ln in _lines:":
                continue  # its whole suite is the touch just dropped
            # The traced store lookups exist only to feed the cache model:
            # on a NullMeter the trace is dead, so specialize down to the
            # single-result lookups (bound methods, no tuple boxing).
            matched = re.match(r"^(\s*)v, _ln = _H\.get_traced\((.*)\)$", line)
            if matched and getattr(compiled, "hash_store", None) is not None:
                namespace[prefix + "_Hget"] = compiled.hash_store.get
                kept.append(f"{matched.group(1)}v = _Hget({matched.group(2)})")
                continue
            matched = re.match(r"^(\s*)nh, _lines = _LPM\.lookup_traced\((.*)\)$", line)
            if matched and getattr(compiled, "lpm_store", None) is not None:
                namespace[prefix + "_LPMlookup"] = compiled.lpm_store.lookup
                kept.append(f"{matched.group(1)}nh = _LPMlookup({matched.group(2)})")
                continue
            kept.append(line)
        body = kept
    mapping = {"m": "meter", "_Hget": prefix + "_Hget", "_LPMlookup": prefix + "_LPMlookup"}
    for key, value in compiled.namespace.items():
        if key.startswith("_") and key not in ("_match", "__builtins__"):
            mapping[key] = prefix + key
            namespace[prefix + key] = value
    body = _rename_body(body, mapping)
    out = []
    for line in body:
        matched = _RETURN.match(line)
        if matched:
            indent, expr = matched.groups()
            out.append(f"{indent}out = {expr}")
            out.append(f"{indent}break")
        else:
            out.append(line)
    return out


def _emit_dispatch(dp: "CompiledDatapath", namespace: dict, null: bool) -> tuple[
    list[str], tuple[int, ...]
]:
    """The ``if tid == N`` chain replacing the trampoline dict lookup."""
    order = [dp.first_table] if dp.first_table in dp.trampoline else []
    order += [tid for tid in sorted(dp.trampoline) if tid not in order]
    lines: list[str] = []
    inlined: list[int] = []
    budget = getattr(dp, "fuse_source_budget", None)
    inlined_chars = 0
    variant = "n" if null else "m"
    for pos, tid in enumerate(order):
        compiled = dp.trampoline[tid]
        if not isinstance(tid, int):
            raise FuseError(f"non-integer table id {tid!r}")
        fn = getattr(compiled, "fn", None)
        if fn is None or not callable(fn):
            raise FuseError(f"table {tid!r} has no callable fast path")
        head = "if" if pos == 0 else "elif"
        lines.append(f"        {head} tid == {tid}:")
        kind = getattr(compiled, "kind", None)
        source = getattr(compiled, "source", "")
        can_inline = (
            kind in INLINABLE
            and source.startswith("def _match(")
            # Data-driven bodies return from inside their entry loop; the
            # return→break rewrite would exit that loop, not the table.
            and not getattr(compiled, "data_driven", False)
        )
        if can_inline and budget is not None and inlined_chars + len(source) > budget:
            can_inline = False  # over the fused-source budget: link by call
        if can_inline:
            inlined_chars += len(source)
            prefix = f"_t{tid}_{variant}"
            lines.append("            while True:")
            body = _inline_body(compiled, prefix, namespace, null)
            lines.extend("            " + line for line in body)
            inlined.append(tid)
        else:
            name = f"_t{tid}_fn"
            namespace[name] = fn
            arg = "_NULL" if null else "meter"
            lines.append(
                f"            out = {name}(data, pkt, l3, l4, proto, etype, nxt, {arg})"
            )
    lines.append("        else:")
    lines.append(
        '            raise _PipelineError(f"goto_table to unlinked table {tid}")'
    )
    return lines, tuple(inlined)


def _etype_lines(dp: "CompiledDatapath", indent: str) -> list[str]:
    """Ethertype extraction, specialized when the extractor is the stock one.

    The L2 parser already resolves the effective (post-VLAN) ethertype and
    caches it on the view (:attr:`ParsedPacket.eth_type`, maintained to
    equal ``_x_eth_type(view) or 0``), so the stock extraction collapses
    to one attribute load. A non-standard extractor keeps the call.
    """
    if dp._extract_etype is not field_by_name("eth_type").extract:
        return [f"{indent}etype = _ext(view) or 0"]
    return [f"{indent}etype = view.eth_type"]


def _emit_run(
    dp: "CompiledDatapath",
    namespace: dict,
    null: bool,
    acyclic: bool = False,
    flags: "dict | None" = None,
) -> tuple[list[str], tuple[int, ...]]:
    """The fused forward core: CompiledDatapath._forward, specialized.

    Every statement mirrors the trampoline's ``_forward`` exactly — same
    charges, same order — with the per-hop dispatch specialized, the
    parser/etype/cost loads baked in, the loop-detection guard elided
    when the static goto graph is proven acyclic, and the write-set /
    metadata / flow-meter machinery elided when no enumerated outcome can
    trigger it (``flags``; None keeps everything). Elided branches charge
    no atoms and can never fire, so verdicts and cycles are unchanged.
    """
    costs = dp.costs
    if flags is None:
        flags = {"write": True, "meta": True, "meter": True}
    # did_work only feeds the action_set charge: dead in the null variant.
    track_work = not null
    name = "_run_n" if null else "_run_m"
    sig = f"def {name}(pkt):" if null else f"def {name}(pkt, meter):"
    lines = [sig]
    lines.append("    view = _parse(pkt)")
    lines.append("    data = pkt.data")
    # Actions that change the frame length always request a reparse, so the
    # hoisted length stays exact at every counters-update site.
    lines.append("    dlen = len(data)")
    lines.append("    l3 = view.l3")
    lines.append("    l4 = view.l4")
    lines.append("    proto = view.proto")
    lines.append("    nxt = view.l4_proto")
    if dp.use_etype:
        lines.extend(_etype_lines(dp, "    "))
    else:
        lines.append("    etype = 0")
    lines.append("    verdict = _Verdict()")
    lines.append("    path = verdict.path")
    if flags["write"]:
        lines.append("    write_set = None")
    lines.append(f"    tid = {dp.first_table}")
    if track_work:
        lines.append("    did_work = False")
    if not acyclic:
        lines.append("    hops = 0")
    lines.append("    while True:")
    if not acyclic:
        lines.append("        hops += 1")
        lines.append(f"        if hops > {MAX_TABLE_HOPS}:")
        lines.append(
            '            raise _PipelineError("compiled pipeline loop detected")'
        )
    dispatch, inlined = _emit_dispatch(dp, namespace, null)
    lines.extend(dispatch)
    lines.append("        entry = out.entry")
    lines.append("        path.append((tid, entry))")
    lines.append("        if out.is_miss:")
    lines.append("            verdict.table_miss = True")
    lines.append("            if out.to_controller:")
    lines.append("                verdict.to_controller = True")
    lines.append("            else:")
    lines.append("                verdict.dropped = True")
    if not null:
        lines.append(f"            meter.charge({costs.table_miss!r})")
    lines.append("            return verdict")
    lines.append("        if entry is not None:")
    lines.append("            counters = entry.counters")
    lines.append("            counters.packets += 1")
    lines.append("            counters.bytes += dlen")
    if flags["meter"]:
        lines.append("        if out.meter is not None and not out.meter.allow():")
        lines.append("            verdict.dropped = True")
        lines.append("            return verdict")
    lines.append("        acts = out.apply_actions")
    lines.append("        if acts:")
    if track_work:
        lines.append("            did_work = True")
    lines.append("            for action in acts:")
    lines.append("                action.apply(view, verdict)")
    lines.append("                if verdict.reparse_needed:")
    lines.append("                    view = _parse(pkt)")
    lines.append("                    data = pkt.data")
    lines.append("                    dlen = len(data)")
    lines.append("                    l3 = view.l3")
    lines.append("                    l4 = view.l4")
    lines.append("                    proto = view.proto")
    lines.append("                    nxt = view.l4_proto")
    if dp.use_etype:
        lines.extend(_etype_lines(dp, "                    "))
    lines.append("                    verdict.reparse_needed = False")
    if flags["write"]:
        lines.append("        if out.clear_actions:")
        lines.append("            write_set = None")
        lines.append("        if out.write_actions:")
        lines.append("            if write_set is None:")
        lines.append("                write_set = list(out.write_actions)")
        lines.append("            else:")
        lines.append("                write_set.extend(out.write_actions)")
    if flags["meta"]:
        lines.append("        if out.metadata_write is not None:")
        lines.append("            value, mask = out.metadata_write")
        lines.append(
            "            pkt.metadata = (pkt.metadata & ~mask) | (value & mask)"
        )
    lines.append("        if verdict.dropped:")
    lines.append("            break")
    lines.append("        tid = out.goto")
    lines.append("        if tid is None:")
    lines.append("            break")
    if not null:
        lines.append(f"        meter.charge({costs.goto_trampoline!r})")
    if flags["write"]:
        lines.append("    if write_set is not None and not verdict.dropped:")
        if track_work:
            lines.append("        did_work = True")
        lines.append(
            "        ordered = [a for a in write_set if not isinstance(a, _Output)]"
        )
        lines.append(
            "        ordered += [a for a in write_set if isinstance(a, _Output)]"
        )
        lines.append("        for action in ordered:")
        lines.append("            action.apply(view, verdict)")
        lines.append("            if verdict.reparse_needed:")
        lines.append("                view = _parse(pkt)")
        lines.append("                verdict.reparse_needed = False")
    if not null:
        lines.append("    if did_work:")
        lines.append(f"        meter.charge({costs.action_set!r})")
        lines.append("    if verdict.forwarded:")
        lines.append(f"        meter.charge({costs.pkt_out!r})")
    lines.append("    return verdict")
    return lines, inlined


def _emit_entrypoints(dp: "CompiledDatapath") -> list[str]:
    """Scalar and burst wrappers around the two forward cores."""
    costs = dp.costs
    # Exactly the expressions the trampoline evaluates per call, computed
    # once here and baked as round-tripping literals: bit-identical floats.
    entry_charge = costs.pkt_in + costs.es_dispatch + dp._parser_cost
    per_pkt = (
        costs.pkt_in + costs.es_dispatch + dp._parser_cost - costs.io_burst_share
    )
    return [
        "def _process(pkt, meter):",
        f"    meter.charge({entry_charge!r})",
        "    return _run_m(pkt, meter)",
        "",
        "def _burst(pkts, meter, on_verdict):",
        "    verdicts = []",
        '    begin = getattr(meter, "begin_packet", None)',
        '    end = getattr(meter, "end_packet", None)',
        f"    meter.charge({costs.io_burst_cost!r})",
        "    i = 0",
        "    n = len(pkts)",
        "    while i < n:",
        "        pkt = pkts[i]",
        "        if begin is not None:",
        "            begin()",
        f"        meter.charge({per_pkt!r})",
        "        verdict = _run_m(pkt, meter)",
        "        if end is not None:",
        "            end()",
        "        verdicts.append(verdict)",
        "        i += 1",
        "        if on_verdict is not None and on_verdict(pkt, verdict):",
        "            return verdicts, i",
        "    return verdicts, -1",
        "",
        "def _burst_null(pkts, on_verdict):",
        "    if on_verdict is None:",
        "        return [_run_n(pkt) for pkt in pkts], -1",
        "    verdicts = []",
        "    i = 0",
        "    n = len(pkts)",
        "    while i < n:",
        "        pkt = pkts[i]",
        "        verdict = _run_n(pkt)",
        "        verdicts.append(verdict)",
        "        i += 1",
        "        if on_verdict is not None and on_verdict(pkt, verdict):",
        "            return verdicts, i",
        "    return verdicts, -1",
    ]


def fuse_datapath(dp: "CompiledDatapath") -> FusedPipeline:
    """Stitch every linked table into one compiled driver object.

    Raises :class:`FuseError` for shapes the fuser does not handle (empty
    trampoline, duck-typed tables without a callable fast path, generated
    sources it cannot inline safely); the caller falls back to the
    trampoline, which handles everything.
    """
    from repro.core.datapath import _PARSERS

    if not dp.trampoline:
        raise FuseError("nothing linked: trampoline is empty")
    namespace: dict = {
        "_parse": _PARSERS[dp.parser_layer],
        "_ext": dp._extract_etype,
        "_Verdict": Verdict,
        "_PipelineError": PipelineError,
        "_Output": Output,
        "_NULL": NULL_METER,
    }
    acyclic, flags = _pipeline_facts(dp)
    run_m, inlined = _emit_run(dp, namespace, null=False, acyclic=acyclic, flags=flags)
    run_n, _ = _emit_run(dp, namespace, null=True, acyclic=acyclic, flags=flags)
    lines = run_m + [""] + run_n + [""] + _emit_entrypoints(dp)
    source = "\n".join(lines) + "\n"
    generation = dp.generation
    try:
        code = compile(source, f"<eswitch:fused:gen{generation}>", "exec")
        exec(code, namespace)
    except FuseError:
        raise
    except Exception as exc:
        # An emitter bug producing unloadable source is a *fusion* failure,
        # not a datapath one: surface it as FuseError so every caller takes
        # the same trampoline-fallback path.
        raise FuseError(f"generated driver failed to load: {exc}") from exc
    return FusedPipeline(
        generation=generation,
        source=source,
        namespace=namespace,
        table_ids=tuple(sorted(dp.trampoline)),
        inlined_ids=inlined,
        process=namespace["_process"],
        process_null=namespace["_run_n"],
        burst=namespace["_burst"],
        burst_null=namespace["_burst_null"],
    )
