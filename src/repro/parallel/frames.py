"""Packed binary frames: the shard wire dialect without pickle.

PR 3's wire dialect (:mod:`repro.parallel.wire`) made the shard boundary
*semantically* cheap — packets as ``(bytes, in_port, metadata,
tunnel_id)`` tuples, verdict path hops as logical ``(ltid, idx)``
positions, flow counters as deltas — but it still crossed the boundary
as ``pickle.dumps`` of a Python object graph, once per worker per burst.
A DPDK datapath ships *descriptors* between cores — fixed-layout arrays
in preallocated rings — never serialized object graphs.  This module is
that descriptor layout for the repro: the exact wire dialect, packed
**columnar** (struct-of-arrays, the DPDK ``rte_mbuf`` bulk idiom) into
flat buffers with a versioned header, written into a shared-memory ring
(:mod:`repro.parallel.rings`) and decoded without ever touching
``pickle`` on the per-burst path.

Frame layout (version 1; little-endian, no padding)::

    header     <HBBII>  magic 0x5246 ("RF") | version | msgtype+flags |
                        payload_len | crc32 (checked iff flag 0x80)
    BURST_REQ payload (n packets):
        <QQBI>          epoch | seq | mode (0 null, 1 cycle) | n
        n*u32           data length column
        n*u32           in_port column
        n*u64           metadata column
        n*u64           tunnel_id column
        blob            the n packets' raw bytes, concatenated
    BURST_REP payload (n_v verdicts, n_p ports, n_h hops, n_d deltas):
        <QQB3xdIQIIII>  epoch | seq | has_cycles | cycles f64 | metered
                        packets | llc misses | n_v | n_p | n_h | n_d
        n_v*u8          verdict flag column
        n_v*u8          ports-per-verdict column
        n_v*u16         hops-per-verdict column
        n_p*u32         output ports, concatenated
        n_h*i32 ×3      tid column | ltid column | idx column
        n_d*i32 ×2      delta ltid column | delta idx column
        n_d*u64 ×2      delta packets column | delta bytes column

A pure-Python codec only competes with C pickle if the *per-packet*
work happens in C, so the layout is chosen to make every section one
bulk call: the integer columns of a whole burst pack and unpack through
a single cached :class:`struct.Struct` with repeat-count formats
(``"<32I32I32Q32Q"``), and the packet blob splits into per-packet
``bytes`` in one C call through a format built from the length column
(``"<64s64s…"``, cached by shape).  Decoding a burst is four struct
calls regardless of burst size; there is no per-packet Python loop
until real ``Packet`` objects are materialized — a cost the pickled
path paid too.

Decoding rejects damage with **typed errors** — :class:`FrameTruncated`
for any short buffer, :class:`FrameCorrupt` for bad magic / counts /
section sizes / checksum, :class:`FrameVersionMismatch` for a frame
from a different protocol generation — never a bare ``struct.error``.

Pickle's role shrinks to what the ISSUE allows: the one-time pipeline
snapshot a worker boots from, and rare control messages (flow-mod
broadcasts, stats pulls, error reports) that stay on the pipe.
"""

from __future__ import annotations

import struct
import zlib
from functools import lru_cache
from itertools import accumulate, chain
from operator import attrgetter
from typing import Sequence

__all__ = [
    "FrameError",
    "FrameTruncated",
    "FrameCorrupt",
    "FrameVersionMismatch",
    "MSG_BURST_REQ",
    "MSG_BURST_REP",
    "VERSION",
    "BurstRequest",
    "BurstReply",
    "request_from_packets",
    "request_from_wires",
    "unpack_request",
    "reply_from_wires",
    "unpack_reply",
    "unpack_frame",
]


class FrameError(ValueError):
    """Base of every codec failure (so callers never see struct.error)."""


class FrameTruncated(FrameError):
    """The buffer ends before the frame does."""


class FrameCorrupt(FrameError):
    """Structurally damaged: bad magic, counts, sections, or checksum."""


class FrameVersionMismatch(FrameError):
    """A frame from a different protocol generation."""


MAGIC = 0x5246  # "RF" little-endian
VERSION = 1

MSG_BURST_REQ = 0x01
MSG_BURST_REP = 0x02
_FLAG_CRC = 0x80
_TYPE_MASK = 0x7F

_MODES = ("null", "cycle")

_HEADER = struct.Struct("<HBBII")
_REQ_HEAD = struct.Struct("<QQBI")
_REP_HEAD = struct.Struct("<QQB3xdIQIIII")

_GET_DATA = attrgetter("data")
_GET_IN_PORT = attrgetter("in_port")
_GET_METADATA = attrgetter("metadata")
_GET_TUNNEL = attrgetter("tunnel_id")


@lru_cache(maxsize=1024)
def _req_cols(n: int) -> struct.Struct:
    return struct.Struct(f"<{n}I{n}I{n}Q{n}Q")


@lru_cache(maxsize=4096)
def _blob_fmt(lens: tuple) -> struct.Struct:
    return struct.Struct("<" + "".join(map("%ds".__mod__, lens)))


@lru_cache(maxsize=1024)
def _rep_cols(shape: tuple) -> struct.Struct:
    n_v, n_p, n_h, n_d = shape
    return struct.Struct(
        f"<{n_v}B{n_v}B{n_v}H{n_p}I"
        f"{n_h}i{n_h}i{n_h}i{n_d}i{n_d}i{n_d}Q{n_d}Q"
    )


def _mode_code(mode: str) -> int:
    try:
        return _MODES.index(mode)
    except ValueError:
        raise FrameError(f"unknown burst mode {mode!r}") from None


def _finish(sections: list, checksum: bool, msgtype: int) -> bytes:
    payload = b"".join(sections)
    crc = zlib.crc32(payload) & 0xFFFFFFFF if checksum else 0
    mtype = msgtype | (_FLAG_CRC if checksum else 0)
    return _HEADER.pack(MAGIC, VERSION, mtype, len(payload), crc) + payload


# -- burst request ---------------------------------------------------------


def _pack_request(epoch, seq, mode, datas, in_ports, metadata, tunnel,
                  checksum) -> bytes:
    n = len(datas)
    try:
        head = _REQ_HEAD.pack(epoch, seq, _mode_code(mode), n)
        cols = _req_cols(n).pack(
            *chain(map(len, datas), in_ports, metadata, tunnel)
        )
    except (OverflowError, TypeError, struct.error) as exc:
        if isinstance(exc, FrameError):
            raise
        raise FrameError(f"unencodable burst request: {exc}") from None
    return _finish([head, cols, *datas], checksum, MSG_BURST_REQ)


def request_from_packets(
    epoch: int, seq: int, mode: str, pkts: Sequence,
    *, checksum: bool = False,
) -> bytes:
    """Pack a burst of :class:`Packet` objects straight into one frame.

    The engine's scatter fast path: no intermediate wire tuples, each
    column extracted by a C-level ``map`` over the burst (``b"".join``
    consumes the packets' ``bytearray`` data without a ``bytes`` copy).
    """
    return _pack_request(
        epoch, seq, mode,
        list(map(_GET_DATA, pkts)),
        map(_GET_IN_PORT, pkts),
        map(_GET_METADATA, pkts),
        map(_GET_TUNNEL, pkts),
        checksum,
    )


def request_from_wires(
    epoch: int, seq: int, mode: str, wires: Sequence[tuple],
    *, checksum: bool = False,
) -> bytes:
    """Pack wire-dialect packet tuples (``encode_packets`` output)."""
    if not wires:
        return _pack_request(epoch, seq, mode, (), (), (), (), checksum)
    datas, in_ports, metadata, tunnel = zip(*wires)
    return _pack_request(
        epoch, seq, mode, datas, in_ports, metadata, tunnel, checksum
    )


class BurstRequest:
    """A decoded burst request, still columnar (struct-of-arrays)."""

    __slots__ = ("epoch", "seq", "mode", "datas", "in_ports",
                 "metadata", "tunnel")

    def __init__(self, epoch, seq, mode, datas, in_ports, metadata, tunnel):
        self.epoch, self.seq, self.mode = epoch, seq, mode
        self.datas = datas          #: tuple of bytes, one per packet
        self.in_ports = in_ports    #: u32 column
        self.metadata = metadata    #: u64 column
        self.tunnel = tunnel        #: u64 column

    def __len__(self) -> int:
        return len(self.datas)

    def wires(self) -> list:
        """Materialize the classic wire tuples (tests, pipe fallback)."""
        return list(zip(self.datas, self.in_ports, self.metadata, self.tunnel))

    def packets(self) -> list:
        """Materialize real :class:`Packet` objects (the worker path).

        Each packet's bytes copy exactly once — from the frame into the
        ``bytearray`` the datapath mutates.
        """
        from repro.packet.packet import Packet

        new = Packet.__new__
        out = []
        for data, in_port, md, tn in zip(
            self.datas, self.in_ports, self.metadata, self.tunnel
        ):
            pkt = new(Packet)
            pkt.data = bytearray(data)
            pkt.in_port = in_port
            pkt.metadata = md
            pkt.tunnel_id = tn
            out.append(pkt)
        return out


def _check_header(buf, offset: int, want_type: "int | None" = None):
    """Validate the frame header; returns (msgtype, payload bytes, end)."""
    view = memoryview(buf)
    if len(view) - offset < _HEADER.size:
        raise FrameTruncated(
            f"{len(view) - offset} bytes cannot hold a frame header"
        )
    magic, version, mtype, payload_len, crc = _HEADER.unpack_from(view, offset)
    if magic != MAGIC:
        raise FrameCorrupt(f"bad magic 0x{magic:04x}")
    if version != VERSION:
        raise FrameVersionMismatch(
            f"frame version {version}, codec speaks {VERSION}"
        )
    kind = mtype & _TYPE_MASK
    if kind not in (MSG_BURST_REQ, MSG_BURST_REP):
        raise FrameCorrupt(f"unknown frame type 0x{kind:02x}")
    if want_type is not None and kind != want_type:
        raise FrameCorrupt(
            f"expected frame type 0x{want_type:02x}, got 0x{kind:02x}"
        )
    start = offset + _HEADER.size
    end = start + payload_len
    if end > len(view):
        raise FrameTruncated(
            f"payload claims {payload_len} bytes, {len(view) - start} present"
        )
    # One C memcpy out of the (possibly shared-memory) buffer: every
    # later section decode then reads cheap immutable bytes, and the
    # caller may release the ring slot as soon as unpack returns.
    payload = bytes(view[start:end])
    if mtype & _FLAG_CRC and zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise FrameCorrupt("payload checksum mismatch")
    return kind, payload, end


def unpack_request(buf, offset: int = 0) -> "tuple[BurstRequest, int]":
    """Decode a request frame; returns ``(BurstRequest, end offset)``."""
    _kind, payload, end = _check_header(buf, offset, MSG_BURST_REQ)
    if len(payload) < _REQ_HEAD.size:
        raise FrameTruncated("burst request head missing")
    epoch, seq, mode_code, n = _REQ_HEAD.unpack_from(payload, 0)
    if mode_code >= len(_MODES):
        raise FrameCorrupt(f"unknown mode code {mode_code}")
    cols = _req_cols(n)
    blob_off = _REQ_HEAD.size + cols.size
    if blob_off > len(payload):
        raise FrameCorrupt(
            f"columns for {n} packets overrun a {len(payload)}B payload"
        )
    flat = cols.unpack_from(payload, _REQ_HEAD.size)
    lens = flat[:n]
    blob = _blob_fmt(lens)
    if blob_off + blob.size != len(payload):
        raise FrameCorrupt(
            f"lengths claim {blob.size}B of packet data, "
            f"{len(payload) - blob_off} present"
        )
    return BurstRequest(
        epoch, seq, _MODES[mode_code],
        blob.unpack_from(payload, blob_off),
        flat[n:2 * n], flat[2 * n:3 * n], flat[3 * n:],
    ), end


# -- burst reply -----------------------------------------------------------


def reply_from_wires(
    epoch: int,
    seq: int,
    cycles: "float | None",
    packets: int,
    llc: int,
    verdicts: Sequence[tuple],
    deltas: Sequence[tuple],
    *, checksum: bool = False,
) -> bytes:
    """Pack one burst reply from wire-dialect tuples.

    ``verdicts`` is :func:`repro.parallel.wire.encode_verdicts` output
    (``(ports, flags, path)`` with ``(tid, ltid, idx)`` hops);
    ``deltas`` that of :func:`~repro.parallel.wire.counter_deltas`.
    """
    try:
        if verdicts:
            port_groups, flags, paths = zip(*verdicts)
            ports = list(chain.from_iterable(port_groups))
            hops = list(chain.from_iterable(paths))
            tids, ltids, idxs = zip(*hops) if hops else ((), (), ())
        else:
            port_groups = paths = ()
            flags = ()
            ports, tids, ltids, idxs = [], (), (), ()
        if deltas:
            d_ltids, d_idxs, d_pk, d_by = zip(*deltas)
        else:
            d_ltids = d_idxs = d_pk = d_by = ()
        shape = (len(port_groups), len(ports), len(tids), len(d_ltids))
        head = _REP_HEAD.pack(
            epoch, seq, 0 if cycles is None else 1,
            0.0 if cycles is None else cycles, packets, llc, *shape,
        )
        body = _rep_cols(shape).pack(*chain(
            flags, map(len, port_groups), map(len, paths), ports,
            tids, ltids, idxs, d_ltids, d_idxs, d_pk, d_by,
        ))
    except (OverflowError, TypeError, ValueError, struct.error) as exc:
        if isinstance(exc, FrameError):
            raise
        raise FrameError(f"unencodable burst reply: {exc}") from None
    return _finish([head, body], checksum, MSG_BURST_REP)


class BurstReply:
    """A decoded burst reply (verdicts back in wire-tuple form)."""

    __slots__ = (
        "epoch", "seq", "cycles", "packets", "llc", "verdicts", "deltas"
    )

    def __init__(self, epoch, seq, cycles, packets, llc, verdicts, deltas):
        self.epoch, self.seq = epoch, seq
        self.cycles, self.packets, self.llc = cycles, packets, llc
        self.verdicts = verdicts  #: list of (ports, flags, path) tuples
        self.deltas = deltas      #: list of (ltid, idx, d_pkts, d_bytes)


def unpack_reply(buf, offset: int = 0) -> "tuple[BurstReply, int]":
    """Decode a reply frame; returns ``(BurstReply, end offset)``."""
    _kind, payload, end = _check_header(buf, offset, MSG_BURST_REP)
    if len(payload) < _REP_HEAD.size:
        raise FrameTruncated("burst reply head missing")
    (epoch, seq, has_cycles, cycles, packets, llc,
     n_v, n_p, n_h, n_d) = _REP_HEAD.unpack_from(payload, 0)
    shape = (n_v, n_p, n_h, n_d)
    cols = _rep_cols(shape)
    if _REP_HEAD.size + cols.size != len(payload):
        raise FrameCorrupt(
            f"sections for shape {shape} need {cols.size}B, "
            f"{len(payload) - _REP_HEAD.size} present"
        )
    flat = cols.unpack_from(payload, _REP_HEAD.size)
    a, b = 2 * n_v, 3 * n_v
    flags, nports, nhops = flat[:n_v], flat[n_v:a], flat[a:b]
    ports = flat[b:b + n_p]
    b += n_p
    tids, ltids, idxs = (flat[b:b + n_h], flat[b + n_h:b + 2 * n_h],
                         flat[b + 2 * n_h:b + 3 * n_h])
    b += 3 * n_h
    d_ltids, d_idxs = flat[b:b + n_d], flat[b + n_d:b + 2 * n_d]
    b += 2 * n_d
    d_pk, d_by = flat[b:b + n_d], flat[b + n_d:]
    if sum(nports) != n_p or sum(nhops) != n_h:
        raise FrameCorrupt("per-verdict counts disagree with section totals")
    p_bounds = list(accumulate(nports, initial=0))
    port_groups = map(ports.__getitem__, map(slice, p_bounds, p_bounds[1:]))
    trips = tuple(zip(tids, ltids, idxs))
    h_bounds = list(accumulate(nhops, initial=0))
    hop_groups = map(trips.__getitem__, map(slice, h_bounds, h_bounds[1:]))
    return BurstReply(
        epoch, seq, cycles if has_cycles else None, packets, llc,
        list(zip(port_groups, flags, hop_groups)),
        list(zip(d_ltids, d_idxs, d_pk, d_by)),
    ), end


def unpack_frame(buf, offset: int = 0):
    """Decode whichever frame sits at ``buf[offset:]``.

    Returns ``(obj, end)`` where ``obj`` is a :class:`BurstRequest` or
    :class:`BurstReply` — the generic entry point for transports that
    multiplex both directions over one buffer.
    """
    kind, _payload, _end = _check_header(buf, offset)
    if kind == MSG_BURST_REQ:
        return unpack_request(buf, offset)
    return unpack_reply(buf, offset)
