"""Fig. 20 / Section 4.4: the per-stage performance model and its bounds.

Reproduces the paper's stage-cost rundown table and its headline
estimates — 166 + 3*Lx cycles/packet: 178 cycles / 11.2 Mpps (all-L1),
202 / 9.9 (all-L2), 253 / 7.9 (all-L3) — and validates the bounds against
a metered run of the compiled gateway datapath.
"""

import pytest

from figshared import publish, render_table
from repro.core import ESwitch
from repro.simcpu.model import gateway_model, gateway_paper_bounds
from repro.traffic import measure
from repro.usecases import gateway


def test_fig20_performance_model(benchmark):
    model = gateway_model()
    bounds = gateway_paper_bounds()

    stage_rows = [(name, cycles, comment) for name, cycles, comment in model.rundown()]
    estimate_rows = [
        ("all L1 (model-ub)", f"{model.cycles(1):.0f}", f"{model.pps(1) / 1e6:.1f}"),
        ("all L2", f"{model.cycles(2):.0f}", f"{model.pps(2) / 1e6:.1f}"),
        ("all L3 (model-lb)", f"{model.cycles(3):.0f}", f"{model.pps(3) / 1e6:.1f}"),
    ]
    publish(
        "fig20_model",
        render_table("Fig. 20: per-stage cycle model (gateway pipeline)",
                     ("stage", "cycles", "comment"), stage_rows)
        + "\n\n"
        + render_table("Section 4.4 estimates (paper: 178/202/253 cycles; "
                       "11.2/9.9/7.9 Mpps)",
                       ("assumption", "cycles/pkt", "Mpps"), estimate_rows),
    )

    # The paper's exact numbers.
    assert model.cycles(1) == pytest.approx(178)
    assert model.cycles(2) == pytest.approx(202)
    assert model.cycles(3) == pytest.approx(253)
    assert bounds["pps_ub"] == pytest.approx(11.2e6, rel=0.01)
    assert bounds["pps_mid"] == pytest.approx(9.9e6, rel=0.01)
    assert bounds["pps_lb"] == pytest.approx(7.9e6, rel=0.01)

    # "these bounds turn out to provide surprisingly useful performance
    # hints": the measured compiled datapath lands inside (or within the
    # runtime-dispatch margin of) the band at a mid-size flow set.
    p, fib = gateway.build(n_ce=10, users_per_ce=20, n_prefixes=10_000)
    sw = ESwitch.from_pipeline(p)
    m = measure(sw, gateway.traffic(fib, 1_000), n_packets=10_000, warmup=2_000)
    assert model.cycles(1) * 0.95 <= m.cycles_per_packet <= model.cycles(3) * 1.1

    benchmark(lambda: gateway_model().bounds())
