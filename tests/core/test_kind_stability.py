"""The shape-class stability fast path: per-mod template re-selection
is skipped only when provably safe, and never masks a real kind change.

Million-entry churn (the megascale rig) dies on anything O(entries) per
flow-mod; ``ESwitch._kind_stable`` proves from the O(shapes) feature
multiset that a mod cannot move the table to another template rung. These
tests pin both directions: steady churn takes the skip, and every
boundary that can genuinely change the rung (new shape class, LPM hazard
pairs, the direct-code threshold, wildcard deletes) falls through to the
full ``select_template`` recompute.
"""

from repro.core import CompileConfig, ESwitch
from repro.core.analysis import TemplateKind, select_template
from repro.core.datapath import required_layer
from repro.core.eswitch import _lpm_hazard
from repro.openflow.actions import DecTtl, Output, SetField
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.instructions import ApplyActions
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.pipeline import Pipeline
from repro.usecases import l2, l3


def add(table_id, priority=1, port=1, actions=None, **match):
    return FlowMod(
        FlowModCommand.ADD,
        table_id,
        Match(**match),
        priority=priority,
        instructions=(ApplyActions(actions or [Output(port)]),),
    )


def strict_delete(table_id, priority, **match):
    return FlowMod(
        FlowModCommand.DELETE, table_id, Match(**match),
        priority=priority, strict=True,
    )


class TestHashChurnSkips:
    def test_steady_churn_never_reselects(self):
        sw = ESwitch.from_pipeline(l2.build(64)[0])
        for i in range(40):
            mac = (0x02 << 40) | (0xEE << 32) | i
            sw.apply_flow_mod(add(0, eth_dst=mac))
            sw.apply_flow_mod(strict_delete(0, 1, eth_dst=mac))
        assert sw.update_stats.kind_stable_skips == 80
        assert sw.update_stats.rebuilds == 0
        assert sw.update_stats.incremental == 80
        assert sw.compiled_table(0).kind is TemplateKind.HASH

    def test_new_shape_class_recomputes(self):
        sw = ESwitch.from_pipeline(l2.build(64)[0])
        before = sw.update_stats.kind_stable_skips
        # A masked match is a new shape class: uniformity may break, so
        # the full re-selection must run (and correctly falls back).
        sw.apply_flow_mod(add(0, eth_dst=(0x020000000000, 0xFFFF00000000)))
        assert sw.update_stats.kind_stable_skips == before
        assert sw.compiled_table(0).kind is not TemplateKind.HASH

    def test_wildcard_delete_recomputes(self):
        sw = ESwitch.from_pipeline(l2.build(64)[0])
        before = sw.update_stats.kind_stable_skips
        sw.apply_flow_mod(
            FlowMod(FlowModCommand.DELETE, 0, Match(eth_dst=l2.build(64)[1][0]))
        )
        assert sw.update_stats.kind_stable_skips == before

    def test_direct_threshold_boundary_recomputes(self):
        pipeline, macs = l2.build(6)
        sw = ESwitch(pipeline, config=CompileConfig(direct_threshold=5))
        assert sw.compiled_table(0).kind is TemplateKind.HASH  # 6 > 5
        sw.apply_flow_mod(strict_delete(0, 1, eth_dst=macs[0]))
        # Crossing the threshold must re-select: the table is now direct.
        assert sw.compiled_table(0).kind is TemplateKind.DIRECT
        assert sw.update_stats.kind_stable_skips == 0


class TestLpmChurnSkips:
    def test_consistent_prefix_churn_skips(self):
        sw = ESwitch.from_pipeline(l3.build(64)[0])
        for i in range(20):
            prefix = f"198.51.{i}.0/24"
            sw.apply_flow_mod(add(0, priority=24, ipv4_dst=prefix))
            sw.apply_flow_mod(strict_delete(0, 24, ipv4_dst=prefix))
        assert sw.update_stats.kind_stable_skips == 40
        assert sw.update_stats.rebuilds == 0
        assert sw.compiled_table(0).kind is TemplateKind.LPM

    def test_ancestor_priority_violation_falls_back(self):
        sw = ESwitch.from_pipeline(l3.build(64)[0])
        # A /8 outranking every /24 under it violates the LPM
        # prerequisite; its class is new, so the full recompute runs and
        # correctly falls back off the LPM rung.
        sw.apply_flow_mod(add(0, priority=60, ipv4_dst="10.0.0.0/8"))
        assert sw.compiled_table(0).kind is not TemplateKind.LPM
        assert sw.update_stats.fallbacks >= 1

    def test_delete_from_consistent_set_skips(self):
        pipeline, fib = l3.build(64)
        sw = ESwitch.from_pipeline(pipeline)
        from repro.net.addresses import int_to_ip

        value, depth, _port = fib[0]
        sw.apply_flow_mod(
            strict_delete(0, depth, ipv4_dst=f"{int_to_ip(value)}/{depth}")
        )
        assert sw.update_stats.kind_stable_skips == 1
        assert sw.compiled_table(0).kind is TemplateKind.LPM


class TestLpmHazard:
    def test_depth_ordered_priorities_are_hazard_free(self):
        classes = {
            (16, (("ipv4_dst", 0xFFFF0000),)),
            (24, (("ipv4_dst", 0xFFFFFF00),)),
            (0, ()),
        }
        assert not _lpm_hazard(classes)

    def test_equal_depth_two_priorities_is_hazardous(self):
        classes = {
            (24, (("ipv4_dst", 0xFFFFFF00),)),
            (23, (("ipv4_dst", 0xFFFFFF00),)),
        }
        assert _lpm_hazard(classes)

    def test_shallow_outranking_deep_is_hazardous(self):
        classes = {
            (30, (("ipv4_dst", 0xFFFF0000),)),
            (24, (("ipv4_dst", 0xFFFFFF00),)),
        }
        assert _lpm_hazard(classes)


class TestSkipNeverChangesSelection:
    def test_skip_decisions_match_full_reselection(self):
        """Whenever the fast path skipped, select_template would have
        agreed — replayed over a mixed churn schedule."""
        pipeline, _macs = l2.build(32)
        sw = ESwitch(pipeline, config=CompileConfig())
        mods = []
        for i in range(15):
            mac = (0x02 << 40) | (0xDD << 32) | i
            mods.append(add(0, eth_dst=mac))
            if i % 3 == 0:
                mods.append(strict_delete(0, 1, eth_dst=mac))
        for mod in mods:
            sw.apply_flow_mod(mod)
            table = sw.pipeline.table(0)
            assert (
                select_template(table.entries, sw.config)
                is sw.compiled_table(0).kind
            )


class TestRequiredLayerOverFeatures:
    def _brute(self, pipeline):
        from repro.openflow.fields import max_layer
        from repro.openflow.groups import GroupAction

        deepest = 2
        names = set(pipeline.matched_fields())
        for table in pipeline:
            for entry in table:
                for action in entry.apply_actions + entry.write_actions:
                    if isinstance(action, SetField):
                        names.add(action.field)
                    elif isinstance(action, DecTtl):
                        deepest = max(deepest, 3)
                    elif isinstance(action, GroupAction):
                        deepest = 4
        if names:
            deepest = max(deepest, max_layer(names))
        return deepest

    def _check(self, entries):
        table = FlowTable(0)
        for e in entries:
            table.add(e)
        pipeline = Pipeline([table])
        assert required_layer(pipeline) == self._brute(pipeline)

    def test_l2_only(self):
        self._check([
            FlowEntry(Match(eth_dst=i), priority=1, actions=[Output(1)])
            for i in range(4)
        ])

    def test_setfield_deepens(self):
        self._check([
            FlowEntry(Match(eth_dst=1), priority=1,
                      actions=[SetField("tcp_dst", 80), Output(1)]),
        ])

    def test_dec_ttl_deepens(self):
        self._check([
            FlowEntry(Match(eth_dst=1), priority=1,
                      actions=[DecTtl(), Output(1)]),
        ])

    def test_match_fields_deepen(self):
        self._check([
            FlowEntry(Match(ipv4_dst="10.0.0.0/8"), priority=8,
                      actions=[Output(1)]),
        ])

    def test_tracks_mutation(self):
        table = FlowTable(0)
        table.add(FlowEntry(Match(eth_dst=1), priority=1, actions=[Output(1)]))
        pipeline = Pipeline([table])
        assert required_layer(pipeline) == 2
        deep = FlowEntry(Match(eth_dst=2), priority=1, actions=[DecTtl()])
        table.add(deep)
        assert required_layer(pipeline) == self._brute(pipeline) == 3
        table.remove(deep.match, 1)
        assert required_layer(pipeline) == 2
