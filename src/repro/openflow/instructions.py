"""OpenFlow instructions attached to flow entries.

The subset the paper's pipelines use: apply-actions, write-actions /
clear-actions (action-set manipulation), write-metadata, and goto-table.
Processing terminates when the matched entry carries no goto-table
(Section 2), at which point the accumulated action set executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.openflow.actions import Action


@dataclass(frozen=True)
class Instruction:
    """Base class for all instructions."""


@dataclass(frozen=True)
class ApplyActions(Instruction):
    """Execute actions immediately, in order."""

    actions: tuple[Action, ...]

    def __init__(self, actions: Iterable[Action]):
        object.__setattr__(self, "actions", tuple(actions))


@dataclass(frozen=True)
class WriteActions(Instruction):
    """Merge actions into the packet's action set (executed at pipeline end)."""

    actions: tuple[Action, ...]

    def __init__(self, actions: Iterable[Action]):
        object.__setattr__(self, "actions", tuple(actions))


@dataclass(frozen=True)
class ClearActions(Instruction):
    """Clear the packet's accumulated action set."""


@dataclass(frozen=True)
class WriteMetadata(Instruction):
    """``metadata = (metadata & ~mask) | (value & mask)``."""

    value: int
    mask: int = field(default=(1 << 64) - 1)


@dataclass(frozen=True)
class GotoTable(Instruction):
    """Continue processing at a later flow table."""

    table_id: int

    def __post_init__(self) -> None:
        if self.table_id < 0:
            raise ValueError(f"invalid table id {self.table_id}")
