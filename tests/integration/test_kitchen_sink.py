"""The kitchen-sink pipeline: every major feature in one program.

VLAN access control, NAT rewrites, ECMP groups, rate-limited telemetry
taps, flow timeouts, and an LPM routing stage — compiled by ESWITCH,
cached by OVS, interpreted by the reference, all agreeing packet for
packet, and surviving a JSON round trip.
"""

import random

from repro.core import ESwitch
from repro.openflow import serialize
from repro.openflow.actions import Controller, Output, PopVlan, SetField
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.groups import Bucket, Group, GroupAction, GroupType
from repro.openflow.instructions import ApplyActions, GotoTable
from repro.openflow.match import Match
from repro.openflow.meters import MeterInstruction
from repro.openflow.pipeline import Pipeline
from repro.ovs import OvsSwitch
from repro.packet import PacketBuilder


def build() -> Pipeline:
    pipeline = Pipeline()
    pipeline.groups.add(Group(1, GroupType.SELECT,
                              [Bucket([Output(10)]), Bucket([Output(11)])]))
    pipeline.meters.add(1, rate_pps=50, burst=1000)

    # Table 0: VLAN access control + decapsulation.
    t0 = FlowTable(0, name="access")
    t0.add(FlowEntry(
        Match(in_port=1, vlan_vid=100), priority=20,
        instructions=(ApplyActions([PopVlan()]), GotoTable(1)),
    ))
    t0.add(FlowEntry(Match(in_port=2), priority=10,
                     instructions=(GotoTable(1),)))
    t0.add(FlowEntry(Match(), priority=0, actions=[]))

    # Table 1: rate-limited telemetry tap for DNS + NAT for web traffic.
    t1 = FlowTable(1, name="services")
    t1.add(FlowEntry(
        Match(ip_proto=17, udp_dst=53), priority=30,
        instructions=(MeterInstruction(pipeline.meters, 1),
                      ApplyActions([Controller(), Output(20)])),
    ))
    t1.add(FlowEntry(
        Match(tcp_dst=80), priority=20,
        instructions=(ApplyActions([SetField("ipv4_dst", 0x0A630001)]),
                      GotoTable(2)),
        idle_timeout=600,
    ))
    t1.add(FlowEntry(Match(), priority=1, instructions=(GotoTable(2),)))

    # Table 2: routing: one prefix to the ECMP group, default drop.
    t2 = FlowTable(2, name="routes")
    t2.add(FlowEntry(Match(ipv4_dst="10.99.0.0/16"), priority=16,
                     actions=[GroupAction(pipeline.groups, 1)]))
    t2.add(FlowEntry(Match(ipv4_dst="0.0.0.0/1"), priority=1,
                     actions=[Output(30)]))
    t2.add(FlowEntry(Match(), priority=0, actions=[]))

    for table in (t0, t1, t2):
        pipeline.add_table(table)
    return pipeline


def traffic(rng: random.Random):
    roll = rng.random()
    builder = PacketBuilder(in_port=rng.choice([1, 1, 2, 3]))
    builder.eth(src=0x020000000001 + rng.randrange(8), dst=0x020000000099)
    if rng.random() < 0.6:
        builder.vlan(vid=rng.choice([100, 100, 200]))
    if roll < 0.3:
        builder.ipv4(src="10.1.0.1", dst="10.99.1.1").tcp(
            src_port=rng.randrange(1024, 60000), dst_port=80)
    elif roll < 0.5:
        builder.ipv4(src="10.1.0.2", dst="10.5.0.1").udp(
            src_port=rng.randrange(1024, 60000), dst_port=53)
    elif roll < 0.8:
        builder.ipv4(src="10.1.0.3", dst=f"10.99.{rng.randrange(256)}.9").tcp(
            src_port=rng.randrange(1024, 60000), dst_port=443)
    else:
        builder.ipv4(src="10.1.0.4", dst="192.0.2.9").udp(dst_port=123)
    return builder.build()


class TestKitchenSink:
    def test_three_way_differential_with_repeats(self):
        es = ESwitch.from_pipeline(build())
        ovs = OvsSwitch(build())
        ref = build()
        rng = random.Random(99)
        packets = [traffic(rng) for _ in range(150)]
        for pkt in packets + [p.copy() for p in packets[:75]]:
            expected = ref.process(pkt.copy())
            a = es.process(pkt.copy())
            b = ovs.process(pkt.copy())
            assert a.summary() == expected.summary()
            assert b.summary() == expected.summary()

    def test_compiles_to_fast_templates(self):
        sw = ESwitch.from_pipeline(build())
        kinds = sw.table_kinds()
        assert kinds[2] == "lpm" or kinds[2] == "direct"
        assert set(kinds) == {0, 1, 2}

    def test_survives_json_round_trip(self):
        original = build()
        restored = serialize.loads(serialize.dumps(original))
        assert len(restored.meters) == 1
        assert len(restored.groups) == 1
        rng = random.Random(5)
        for _ in range(80):
            pkt = traffic(rng)
            assert (restored.process(pkt.copy()).summary()
                    == original.process(pkt.copy()).summary())

    def test_meter_throttles_the_tap_only(self):
        es = ESwitch.from_pipeline(build())
        dns = (PacketBuilder(in_port=2).eth()
               .ipv4(src="10.1.0.2", dst="10.5.0.1").udp(dst_port=53).build())
        web = (PacketBuilder(in_port=2).eth()
               .ipv4(src="10.1.0.1", dst="10.99.1.1").tcp(dst_port=80).build())
        dns_fwd = sum(es.process(dns.copy()).forwarded for _ in range(1500))
        web_fwd = sum(es.process(web.copy()).forwarded for _ in range(100))
        assert dns_fwd == 1000  # the meter's burst; clock frozen
        assert web_fwd == 100   # unmetered path unaffected
