"""Layer-2 switching: exact matching on a MAC table (Section 4.1).

"The L2 pipeline compiles into the hash table template, effectively
reducing into a conventional Ethernet software switch." Tables hold random
MAC addresses; traces align destination MACs with table contents "to avoid
frequent table misses".
"""

from __future__ import annotations

import random

from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline
from repro.packet.builder import PacketBuilder
from repro.traffic.flows import FlowSet

N_PORTS = 16


def build(n_entries: int, seed: int = 7) -> tuple[Pipeline, list[int]]:
    """A single MAC table with ``n_entries`` random addresses.

    Returns the pipeline and the MAC list (for trace alignment).
    """
    if n_entries < 1:
        raise ValueError("need at least one MAC entry")
    rng = random.Random(seed)
    macs: list[int] = []
    seen: set[int] = set()
    while len(macs) < n_entries:
        mac = rng.getrandbits(48) & ~(1 << 40)  # unicast
        if mac not in seen:
            seen.add(mac)
            macs.append(mac)
    table = FlowTable(0, name="mac")
    table.add_bulk(
        [
            FlowEntry(Match(eth_dst=mac), priority=1, actions=[Output(i % N_PORTS)])
            for i, mac in enumerate(macs)
        ]
    )
    return Pipeline([table]), macs


def traffic(macs: list[int], n_flows: int, seed: int = 11) -> FlowSet:
    """``n_flows`` distinct flows whose destinations cycle over the table.

    When the flow count exceeds the table size, flows reuse destinations
    but differ in source MAC — still table hits, still distinct microflows.
    """
    rng = random.Random(seed)

    def factory(i: int, _rng: random.Random) -> object:
        dst = macs[i % len(macs)]
        src = rng.getrandbits(48) & ~(1 << 40)
        return (
            PacketBuilder(in_port=N_PORTS)
            .eth(src=src, dst=dst)
            .ipv4(src="10.0.0.1", dst="10.0.0.2")
            .udp(src_port=1000 + (i % 50000), dst_port=2000)
            .build()
        )

    return FlowSet.build(n_flows, factory, seed=seed, name=f"l2-{n_flows}flows")
