"""Bit-manipulation helpers shared by classifiers and cache-key computation.

Bit positions follow the paper's Fig. 3 convention: position 1 is the most
significant bit of the field, position ``width`` the least significant.
"""

from __future__ import annotations


def bit_count(value: int) -> int:
    """Population count."""
    return value.bit_count()


def contiguous_prefix_mask(mask: int, width: int) -> bool:
    """True if ``mask`` wildcards only the last consecutive bits of the field.

    This is the prerequisite of the LPM table template (Section 3.1): masks
    must be of the form ``1...10...0``.
    """
    if not 0 <= mask < (1 << width):
        raise ValueError(f"mask out of range for width {width}: {mask:#x}")
    if mask == 0:
        return True
    # The set bits must occupy exactly the top popcount(mask) positions.
    n = mask.bit_count()
    return mask == (((1 << width) - 1) >> (width - n)) << (width - n)


def first_set_bit(value: int, width: int) -> int | None:
    """Position (1-based, MSB first) of the first set bit, or None."""
    if value == 0:
        return None
    return width - value.bit_length() + 1


def lowest_differing_bit(a: int, b: int, width: int) -> int | None:
    """Position (1-based, MSB first) of the least-significant differing bit.

    Used by the megaflow bit-tracking mode to reproduce Fig. 3: the miss
    proof pins the lowest-order bit where the packet diverges from a rule.
    """
    diff = a ^ b
    if diff == 0:
        return None
    lsb = (diff & -diff).bit_length()  # 1-based from LSB
    return width - lsb + 1


def highest_differing_bit(a: int, b: int, width: int) -> int | None:
    """Position (1-based, MSB first) of the most-significant differing bit."""
    diff = a ^ b
    if diff == 0:
        return None
    return width - diff.bit_length() + 1


def bit_at(value: int, position: int, width: int) -> int:
    """Bit of ``value`` at 1-based MSB-first ``position``."""
    if not 1 <= position <= width:
        raise ValueError(f"bit position {position} out of range for width {width}")
    return (value >> (width - position)) & 1


def mask_for_bit(position: int, width: int) -> int:
    """Single-bit mask selecting 1-based MSB-first ``position``."""
    if not 1 <= position <= width:
        raise ValueError(f"bit position {position} out of range for width {width}")
    return 1 << (width - position)


def field_bytes(value: int, width_bits: int) -> bytes:
    """Big-endian byte representation of a field value."""
    nbytes = (width_bits + 7) // 8
    return value.to_bytes(nbytes, "big")
