"""Differential compiler fuzzing: corpus replay, determinism, shrinker.

The pinned corpus in ``tests/fuzz_corpus/`` is the harness's memory:
every scenario there runs through the full backend matrix (fused,
trampoline-only, universal linked list, the OVS megaflow model, and the
sharded engine at 1 and 4 workers) and must produce identical verdicts,
forwarding, counters, and stats. ``regression-*.json`` files are
minimized reproductions of bugs this harness found — each fails on the
tree that shipped the bug and pins the fix forever.

A short random smoke leg runs here too; CI widens it via the
``REPRO_FUZZ_CASES`` environment variable (see ``repro fuzz --help``
for the reproduce/minimize workflow).
"""

from __future__ import annotations

import glob
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.eswitch import CompileConfig, ESwitch
from repro.fuzz import (
    RUNGS,
    Scenario,
    diverges,
    generate,
    generate_churn,
    generate_fabric_outage,
    generate_large,
    minimize,
    run_outage_parity,
    run_scenario,
)
from repro.fuzz.shrink import size_of

from strategies import goto_dag_pipelines, packets, tied_tables

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "fuzz_corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def _corpus_ids():
    return [os.path.splitext(os.path.basename(p))[0] for p in CORPUS]


class TestCorpus:
    def test_corpus_exists(self):
        assert len(CORPUS) >= 10, "curated corpus shrank below ten scenarios"

    def test_corpus_covers_every_rung(self):
        names = set(_corpus_ids())
        for rung in RUNGS:
            assert f"rung-{rung}" in names, f"no corpus scenario pins {rung}"

    def test_corpus_covers_degradation_states(self):
        names = set(_corpus_ids())
        assert "state-degrade-fuse" in names
        assert "state-quarantine" in names

    def test_fixed_bugs_are_pinned(self):
        names = set(_corpus_ids())
        assert "regression-range-run-attribution" in names
        assert "regression-decompose-counter-aliasing" in names

    @pytest.mark.parametrize("path", CORPUS, ids=_corpus_ids())
    def test_replay_clean(self, path):
        scenario = Scenario.load(path)
        divergences = run_scenario(scenario)
        assert not divergences, "\n".join(str(d) for d in divergences)

    def test_corpus_round_trips(self):
        for path in CORPUS:
            obj = json.load(open(path))
            assert Scenario.from_obj(obj).to_obj() == obj


class TestGenerator:
    def test_deterministic(self):
        for seed in (0, 7, 42):
            assert generate(seed).to_obj() == generate(seed).to_obj()

    def test_distinct_seeds_distinct_scenarios(self):
        assert generate(0).to_obj() != generate(1).to_obj()

    def test_force_rungs_honored(self):
        scenario = generate(0, force_rungs=("range",), max_tables=1,
                            allow_quarantine=False, allow_degrade=False)
        names = [t["name"] for t in scenario.to_obj()["pipeline"]["tables"]]
        assert all("range" in n for n in names)

    def test_smoke_random_seeds_clean(self):
        cases = int(os.environ.get("REPRO_FUZZ_CASES", "4"))
        start = int(os.environ.get("REPRO_FUZZ_SEED", "0"))
        failures = []
        for seed in range(start, start + cases):
            scenario = generate(seed)
            divergences = run_scenario(scenario)
            if divergences:
                failures.append((seed, [str(d) for d in divergences]))
        assert not failures, failures


class TestLargeCardinality:
    """The large-cardinality scenario class: chained hash/LPM/direct
    tables big enough that the CompileConfig overrides matter, run
    through the full backend matrix."""

    def test_deterministic_and_round_trips(self):
        a = generate_large(3, n_entries=48)
        b = generate_large(3, n_entries=48)
        assert a.to_obj() == b.to_obj()
        assert Scenario.from_obj(
            json.loads(json.dumps(a.to_obj()))
        ).to_obj() == a.to_obj()

    def test_overrides_serialize(self):
        scenario = generate_large(5, n_entries=48)
        obj = scenario.to_obj()
        assert obj["direct_threshold"] == scenario.direct_threshold
        assert obj["source_budget"] == scenario.source_budget

    def test_pins_every_rung_and_degrades_direct(self):
        scenario = generate_large(1, n_entries=48)
        switch = ESwitch(
            scenario.build_pipeline(),
            config=CompileConfig(
                direct_threshold=scenario.direct_threshold,
                source_budget=scenario.source_budget,
            ),
        )
        switch.warm()
        kinds = {
            tid: switch.compiled_table(tid).kind.name.lower()
            for tid in (0, 1, 2)
        }
        assert kinds == {0: "hash", 1: "lpm", 2: "direct"}
        assert switch.health().data_driven  # budget forced the fallback

    def test_matrix_clean_under_churn(self):
        scenario = generate_large(2, n_entries=48)
        divergences = run_scenario(scenario)
        assert not divergences, [str(d) for d in divergences]


class TestChurnScenario:
    """The churn-wall scenario class: tombstone storms, amortized
    compaction, and expiry-clock ticks, run through the full matrix."""

    def _dry_run(self, scenario):
        """The reference leg alone, instrumented."""
        from repro.openflow.timeouts import ExpiryManager, PipelineAdapter

        pipeline = scenario.build_pipeline()
        adapter = PipelineAdapter(pipeline)
        manager = ExpiryManager(adapter)
        for event in scenario.events:
            if "burst" in event:
                for pkt in scenario.build_packets(event["burst"]):
                    pipeline.process(pkt)
            elif "tick" in event:
                manager.tick(float(event["tick"]))
            else:
                for mod in scenario.build_mods(event["mods"], pipeline):
                    adapter.apply_flow_mod(mod)
        return pipeline, manager

    def test_deterministic_and_round_trips(self):
        a = generate_churn(4)
        b = generate_churn(4)
        assert a.to_obj() == b.to_obj()
        assert Scenario.from_obj(
            json.loads(json.dumps(a.to_obj()))
        ).to_obj() == a.to_obj()

    def test_exercises_compaction_and_both_expiry_kinds(self):
        # The class only earns its keep if the oracle actually crosses
        # the bug class's machinery: real compactions, idle expiries of
        # quiet flows, hard expiries of flows active to the very end.
        pipeline, manager = self._dry_run(generate_churn(0))
        table = pipeline.table(0)
        assert table.compactions >= 1
        assert manager.expired_idle > 0
        assert manager.expired_hard > 0
        # The keep-alive cohort refreshed its idle deadline every window
        # and must have survived.
        assert manager.tracked_count > 0

    def test_matrix_clean(self):
        divergences = run_scenario(generate_churn(1))
        assert not divergences, [str(d) for d in divergences]


class TestFabricOutageScenario:
    """The fabric-outage class: a session blackout + resync in the middle
    of a flow-mod storm must converge to the never-disconnected run."""

    def test_deterministic_and_round_trips(self):
        a = generate_fabric_outage(3)
        b = generate_fabric_outage(3)
        assert a.to_obj() == b.to_obj()
        assert Scenario.from_obj(
            json.loads(json.dumps(a.to_obj()))
        ).to_obj() == a.to_obj()
        assert a.outage and 0 < a.outage[0] < a.outage[1]

    def test_parity_after_convergence(self):
        report = run_outage_parity(generate_fabric_outage(0))
        assert report["parity"], "post-resync verdicts diverge from the " \
            "never-disconnected run"
        assert report["final_packets"] > 0
        # The window must actually bite: every dark batch was rejected
        # with a typed channel error, verdicts diverged *during* the
        # outage, and exactly one outage/resync cycle was declared.
        assert report["rejected_batches"] == 4
        assert report["diverged_bursts_during"]
        assert report["outage"] == {"punts": report["outage"]["punts"],
                                    "outages": 1, "resyncs": 1}
        assert report["baseline"]["outages"] == 0

    def test_parity_across_seeds(self):
        for seed in range(3):
            report = run_outage_parity(generate_fabric_outage(seed))
            assert report["parity"], f"seed {seed} lost convergence parity"

    def test_matrix_clean(self):
        # The differential matrix delivers every batch — the baseline
        # run — so the corpus entry also pins the storm itself.
        divergences = run_scenario(generate_fabric_outage(1))
        assert not divergences, [str(d) for d in divergences]

    def test_outage_window_requires_harness(self):
        scenario = generate_fabric_outage(0)
        scenario.outage = ()
        with pytest.raises(ValueError, match="no outage window"):
            run_outage_parity(scenario)


class TestShrinker:
    def test_minimize_preserves_predicate(self):
        obj = generate(3).to_obj()
        # An injectable stand-in for "still diverges": the scenario still
        # delivers at least one packet. The shrinker must keep it true
        # while stripping everything else.
        def predicate(o):
            return any(o.get("events", ())) and any(
                e.get("burst") for e in o["events"]
            )

        small = minimize(obj, predicate, budget=150)
        assert predicate(small)
        assert size_of(small) < size_of(obj)
        Scenario.from_obj(small).build_pipeline()  # still loadable

    def test_minimize_rejects_non_failing_input(self):
        obj = generate(3).to_obj()
        with pytest.raises(ValueError):
            minimize(obj, lambda o: False, budget=10)

    def test_minimized_scenario_still_runs(self):
        obj = generate(5).to_obj()
        small = minimize(
            obj, lambda o: bool(o["pipeline"]["tables"]), budget=100
        )
        assert not diverges(small)  # a shrunk clean scenario stays clean


class TestCli:
    def test_fuzz_seed_range_clean(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--seed", "0", "--count", "2"]) == 0
        out = capsys.readouterr().out
        assert "ok   seed 0" in out and "ok   seed 1" in out

    def test_fuzz_replay_corpus(self, capsys):
        from repro.cli import main

        path = os.path.join(CORPUS_DIR, "regression-range-run-attribution.json")
        assert main(["fuzz", "--replay", path]) == 0
        assert "ok" in capsys.readouterr().out


class TestProperties:
    """Hypothesis cross-checks drawing from the shared strategy library."""

    @settings(max_examples=25, deadline=None)
    @given(tied_tables(), st.lists(packets(), min_size=1, max_size=4))
    def test_priority_ties_break_identically(self, table, pkts):
        from repro.openflow.pipeline import Pipeline

        pipeline = Pipeline([table])
        switch = ESwitch(pipeline, config=CompileConfig())
        for pkt in pkts:
            want = pipeline.process(pkt.copy())
            got = switch.process(pkt.copy())
            assert got.summary() == want.summary()

    @settings(max_examples=25, deadline=None)
    @given(goto_dag_pipelines(), st.lists(packets(), min_size=1, max_size=4))
    def test_goto_dags_compile_equivalently(self, pipeline, pkts):
        switch = ESwitch(pipeline, config=CompileConfig())
        for pkt in pkts:
            want = pipeline.process(pkt.copy())
            got = switch.process(pkt.copy())
            assert got.summary() == want.summary()
