"""Shared hypothesis strategies and helpers for property-based tests.

The value/mask vocabulary lives in :mod:`repro.fuzz.domain` — property
tests and the differential fuzzer draw from the same generator library,
so a bug either side finds is expressible in the other's terms.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.fuzz import domain
from repro.fuzz.domain import FIELD_DOMAINS, FIELD_WIDTHS, MASKS, V6_A, V6_B
from repro.openflow.actions import Controller, Drop, Output, SetField
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable, TableMissPolicy
from repro.openflow.instructions import ApplyActions, GotoTable
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.pipeline import Pipeline
from repro.packet.builder import PacketBuilder
from repro.packet.packet import Packet

__all__ = [
    "FIELD_DOMAINS", "FIELD_WIDTHS", "MASKS", "V6_A", "V6_B",
    "matches", "masked_matches", "actions", "flow_tables", "tied_tables",
    "pipelines", "goto_dag_pipelines", "flow_mod_batches", "packets",
    "random_packet",
]


@st.composite
def matches(draw) -> Match:
    """A random match over a small field/value domain."""
    names = draw(
        st.lists(
            st.sampled_from(sorted(FIELD_DOMAINS)), min_size=0, max_size=3, unique=True
        )
    )
    pairs = {}
    for name in names:
        value = draw(st.sampled_from(FIELD_DOMAINS[name]))
        mask_options = MASKS.get(name)
        if mask_options and draw(st.booleans()):
            mask = draw(st.sampled_from(mask_options))
            pairs[name] = (value, mask)
        else:
            pairs[name] = value
    return Match(**pairs)


@st.composite
def masked_matches(draw) -> Match:
    """A match with **arbitrary masks**: prefix masks of any length and
    non-contiguous bit patterns on every maskable field — the corners the
    curated :data:`MASKS` pools never reach."""
    names = draw(
        st.lists(
            st.sampled_from(sorted(FIELD_DOMAINS)), min_size=1, max_size=3, unique=True
        )
    )
    pairs = {}
    for name in names:
        width = FIELD_WIDTHS[name]
        full = (1 << width) - 1
        value = draw(st.sampled_from(FIELD_DOMAINS[name] + [draw(st.integers(0, full))]))
        if name in domain.EXACT_ONLY:
            pairs[name] = value & full
            continue
        kind = draw(st.integers(0, 2))
        if kind == 0:
            mask = full
        elif kind == 1:  # prefix of arbitrary length
            plen = draw(st.integers(1, width))
            mask = (full << (width - plen)) & full
        else:  # arbitrary, possibly non-contiguous
            mask = draw(st.integers(1, full))
        pairs[name] = (value & mask, mask)
    return Match(**pairs)


@st.composite
def actions(draw, allow_rewrites: bool = True):
    choice = draw(st.integers(0, 3 if allow_rewrites else 2))
    if choice == 0:
        return Output(draw(st.integers(1, 4)))
    if choice == 1:
        return Drop()
    if choice == 2:
        return Controller()
    return SetField("ipv4_dst", draw(st.sampled_from(FIELD_DOMAINS["ipv4_dst"])))


@st.composite
def flow_tables(draw, table_id: int = 0, max_entries: int = 8, goto_ids=()):
    table = FlowTable(
        table_id,
        miss_policy=draw(st.sampled_from(list(TableMissPolicy))),
    )
    n = draw(st.integers(1, max_entries))
    for i in range(n):
        match = draw(matches())
        instrs: list = [ApplyActions([draw(actions())])]
        if goto_ids and draw(st.booleans()):
            instrs.append(GotoTable(draw(st.sampled_from(list(goto_ids)))))
        table.add(
            FlowEntry(match, priority=draw(st.integers(0, 20)), instructions=instrs)
        )
    return table


@st.composite
def tied_tables(draw, table_id: int = 0, max_entries: int = 6):
    """A table where several overlapping entries share one priority, so
    the winner is decided by insertion-order tie-breaking — every backend
    must break the tie the same way."""
    table = FlowTable(
        table_id, miss_policy=draw(st.sampled_from(list(TableMissPolicy)))
    )
    tie = draw(st.integers(1, 10))
    n = draw(st.integers(2, max_entries))
    for i in range(n):
        # Bias toward the shared priority and toward broad (maskable)
        # matches so overlaps actually happen.
        priority = tie if draw(st.integers(0, 3)) else draw(st.integers(0, 20))
        match = draw(masked_matches()) if draw(st.booleans()) else draw(matches())
        table.add(
            FlowEntry(
                match,
                priority=priority,
                instructions=[ApplyActions([Output(i + 1)])],
            )
        )
    return table


@st.composite
def pipelines(draw, max_tables: int = 3):
    n = draw(st.integers(1, max_tables))
    tables = []
    for i in range(n):
        goto_targets = range(i + 1, n)
        tables.append(draw(flow_tables(table_id=i, goto_ids=tuple(goto_targets))))
    return Pipeline(tables)


@st.composite
def goto_dag_pipelines(draw, max_tables: int = 5):
    """A deeper pipeline whose goto graph is a random acyclic DAG: each
    entry in table ``i`` may jump to any strictly later table, not just
    ``i+1``, so dispatch trampolines see skip-level edges and diamonds."""
    n = draw(st.integers(2, max_tables))
    tables = []
    for i in range(n):
        table = FlowTable(
            i, miss_policy=draw(st.sampled_from(list(TableMissPolicy)))
        )
        for _ in range(draw(st.integers(1, 4))):
            instrs: list = [ApplyActions([draw(actions())])]
            if i + 1 < n and draw(st.integers(0, 2)):
                instrs.append(GotoTable(draw(st.integers(i + 1, n - 1))))
            table.add(
                FlowEntry(
                    draw(matches()),
                    priority=draw(st.integers(0, 20)),
                    instructions=instrs,
                )
            )
        tables.append(table)
    return Pipeline(tables)


@st.composite
def flow_mod_batches(draw, pipeline: Pipeline, max_mods: int = 6):
    """A mid-stream flow-mod schedule against an existing pipeline:
    ADD/MODIFY/DELETE at real and colliding (match, priority) points,
    with occasional strict deletes and invalid table ids that the
    admission layer must reject identically everywhere."""
    table_ids = [t.table_id for t in pipeline.tables]
    existing = [
        (t.table_id, e.match, e.priority)
        for t in pipeline.tables
        for e in t.entries
    ]
    mods = []
    for _ in range(draw(st.integers(1, max_mods))):
        command = draw(st.sampled_from(list(FlowModCommand)))
        # Mostly target live entries so MODIFY/DELETE actually bite.
        if existing and draw(st.integers(0, 2)):
            table_id, match, priority = draw(st.sampled_from(existing))
        else:
            table_id = draw(st.sampled_from(table_ids))
            match = draw(matches())
            priority = draw(st.integers(0, 20))
        if not draw(st.integers(0, 9)):  # rare poison mod: bad table id
            table_id = 300
        mods.append(
            FlowMod(
                command=command,
                table_id=table_id,
                match=match,
                priority=priority,
                instructions=(ApplyActions([draw(actions())]),),
                strict=draw(st.booleans()),
            )
        )
    return mods


@st.composite
def packets(draw) -> Packet:
    """A random packet whose fields collide with FIELD_DOMAINS values."""
    builder = PacketBuilder(in_port=draw(st.sampled_from(FIELD_DOMAINS["in_port"])))
    builder.eth(
        src=0x0200_0000_0099,
        dst=draw(st.sampled_from(FIELD_DOMAINS["eth_dst"] + [0x0200_0000_00FF])),
    )
    if draw(st.booleans()):
        builder.vlan(vid=draw(st.sampled_from(FIELD_DOMAINS["vlan_vid"] + [300])))
    l3 = draw(st.integers(0, 3))
    if l3 == 0:
        return builder.build()  # L2-only frame
    if l3 == 3:
        builder.ipv6(dst=draw(st.sampled_from(FIELD_DOMAINS["ipv6_dst"] + [V6_A + 99])))
    else:
        builder.ipv4(
            src=draw(st.sampled_from(FIELD_DOMAINS["ipv4_src"] + [0x0A0000FF])),
            dst=draw(st.sampled_from(FIELD_DOMAINS["ipv4_dst"] + [0x01010101])),
        )
    l4 = draw(st.integers(0, 2))
    if l4 == 0:
        builder.tcp(
            src_port=draw(st.integers(1024, 1030)),
            dst_port=draw(st.sampled_from(FIELD_DOMAINS["tcp_dst"] + [9999])),
        )
    elif l4 == 1:
        builder.udp(
            src_port=draw(st.integers(1024, 1030)),
            dst_port=draw(st.sampled_from(FIELD_DOMAINS["udp_dst"] + [9999])),
        )
    return builder.build()


def random_packet(rng: random.Random) -> Packet:
    """Non-hypothesis random packet for plain randomized tests."""
    builder = PacketBuilder(in_port=rng.choice(FIELD_DOMAINS["in_port"]))
    builder.eth(src=0x0200_0000_0099, dst=rng.choice(FIELD_DOMAINS["eth_dst"]))
    if rng.random() < 0.3:
        builder.vlan(vid=rng.choice(FIELD_DOMAINS["vlan_vid"]))
    l3_roll = rng.random()
    if l3_roll < 0.7:
        builder.ipv4(
            src=rng.choice(FIELD_DOMAINS["ipv4_src"]),
            dst=rng.choice(FIELD_DOMAINS["ipv4_dst"]),
        )
    elif l3_roll < 0.9:
        builder.ipv6(dst=rng.choice(FIELD_DOMAINS["ipv6_dst"]))
    else:
        return builder.build()  # L2-only frame
    roll = rng.random()
    if roll < 0.45:
        builder.tcp(dst_port=rng.choice(FIELD_DOMAINS["tcp_dst"]))
    elif roll < 0.9:
        builder.udp(dst_port=rng.choice(FIELD_DOMAINS["udp_dst"]))
    return builder.build()
