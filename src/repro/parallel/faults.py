"""Deterministic fault injection for the sharded engine's workers.

Wong et al. (PAPERS.md) make the case that a compiler-backed datapath is
only trustworthy once you have watched it *fail*: simulated hardware
faults exercise the recovery paths that healthy runs never touch. This
module is that instrument for :class:`~repro.parallel.ShardedESwitch` —
a picklable plan of precisely-placed worker faults that the supervision
layer (deadlines, respawn, retry, degradation) must absorb without the
caller noticing.

A :class:`FaultInjector` is handed to the engine at construction and
travels to every worker (fork or pickle). Inside the worker loop each
command fires two hook points — ``"before"`` the command executes and
``"after"`` it executed but before the reply is sent — and the armed
plan decides whether this worker, on this command occurrence, suffers a

* ``"kill"`` — the worker dies on the spot (``os._exit`` for a process,
  channel close + return for a thread), exactly like an OOM kill or
  segfault: any work done but not yet acked is simply gone;
* ``"hang"`` — the worker sleeps ``seconds`` (default far past any sane
  deadline) before carrying on, modeling a live-locked or swapping
  worker the engine must deadline out and abandon;
* ``"delay"`` — the worker sleeps a *sub-deadline* ``seconds`` and then
  answers normally, modeling jitter that supervision must NOT treat as
  a fault.

Placement is fully deterministic: a spec names the shard index, the
command kind (``"burst"``, ``"mods"``, ``"stats"``, ``"ping"``,
``"spawn"``, or ``"any"``), the 1-based occurrence of that command on
that shard, the hook stage, and which worker *generation* it applies to
(``0`` = the originally spawned worker — the default, so respawned
replacements come up clean; ``"respawn"`` = every replacement, which
makes respawn itself keep failing; ``None`` = all generations). The
``"spawn"`` pseudo-command fires once at worker startup, before the
ready handshake — a ``kill`` there makes the replacement stillborn.

The ``"after"`` stage on ``"mods"`` is the deliberately nasty one: the
replica has applied the flow-mod batch and re-fused, and dies holding
an un-sent ack — the engine's epoch barrier must neither wedge on it
nor let a half-acked batch leak into a gather.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

_KINDS = ("kill", "hang", "delay")
_STAGES = ("before", "after")
_CMDS = ("burst", "mods", "stats", "ping", "spawn", "any")


class WorkerKilled(BaseException):
    """Raised inside a worker to make it die (deliberately not Exception:
    the worker loop's error reporting must not catch its own death)."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: where, when, and what happens."""

    shard: int
    cmd: str = "burst"
    occurrence: int = 1
    kind: str = "kill"
    when: str = "before"
    seconds: float = 30.0
    #: 0 = original worker (default), k = the k-th respawned replacement,
    #: "respawn" = any replacement, None = every generation.
    generation: "int | str | None" = 0

    def __post_init__(self) -> None:
        if self.cmd not in _CMDS:
            raise ValueError(f"unknown fault command {self.cmd!r}")
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.when not in _STAGES:
            raise ValueError(f"unknown fault stage {self.when!r}")
        if self.occurrence < 1:
            raise ValueError("occurrence is 1-based")
        if self.seconds < 0:
            raise ValueError("seconds must be non-negative")
        if self.generation is not None and self.generation != "respawn":
            if not isinstance(self.generation, int) or self.generation < 0:
                raise ValueError(f"bad generation {self.generation!r}")

    def applies_to_generation(self, generation: int) -> bool:
        if self.generation is None:
            return True
        if self.generation == "respawn":
            return generation >= 1
        return self.generation == generation


class FaultInjector:
    """An immutable plan of :class:`FaultSpec` s, armed per worker.

    The injector itself carries no mutable state (it crosses process
    boundaries by fork or pickle); each worker arms its own private
    occurrence counters via :meth:`arm`, so fault placement is
    deterministic regardless of scheduling.
    """

    def __init__(self, *specs: FaultSpec):
        self.specs = tuple(specs)

    def arm(self, shard_index: int, generation: int = 0) -> "ArmedFaults":
        mine = tuple(
            s for s in self.specs
            if s.shard == shard_index and s.applies_to_generation(generation)
        )
        return ArmedFaults(mine)

    def __repr__(self) -> str:
        return f"FaultInjector({', '.join(map(repr, self.specs))})"


class ArmedFaults:
    """Worker-side trigger state: per-command occurrence counters."""

    def __init__(self, specs: "tuple[FaultSpec, ...]"):
        self._specs = specs
        self._counts: dict[str, int] = {}

    def fire(self, cmd: str, stage: str) -> None:
        """Hook point; may sleep or raise :class:`WorkerKilled`."""
        if not self._specs:
            return
        if stage == "before":
            self._counts[cmd] = self._counts.get(cmd, 0) + 1
        count = self._counts.get(cmd, 0)
        for spec in self._specs:
            if spec.when != stage or spec.occurrence != count:
                continue
            if spec.cmd != cmd and spec.cmd != "any":
                continue
            if spec.kind == "kill":
                raise WorkerKilled()
            time.sleep(spec.seconds)  # hang and delay differ only in size


#: An armed no-op plan, so worker code can call ``fire`` unconditionally.
NO_FAULTS = ArmedFaults(())
