"""The megaflow cache: disjoint wildcard entries + their generation.

"The second-level megaflow cache allows to bundle multiple microflows into
a single megaflow aggregate … The megaflow cache uses a tuple space search
strategy … Since the megaflow cache does not 'know' about flow priorities,
matches can never overlap and so megaflows must be disjoint." (Section 2.2)

Two wildcard-generation modes are provided:

* :attr:`WildcardMode.FIELD` — the production algorithm: every subtable the
  slow-path classifier probed contributes its whole mask signature. This
  drives all the performance experiments.
* :attr:`WildcardMode.BIT_TRACKING` — per-bit proofs in the style of OVS
  prefix/port tracking ([29], "Flow caching for high entropy packet
  fields"): a rule the packet *misses* is disproven by a single bit — the
  lowest-order bit where the packet diverges from the rule — while a rule
  it *matches* pins all its match bits. This mode reproduces Fig. 3's
  arrival-order anomaly: the same table and packets yield 7 megaflows under
  one arrival order and 1 under another.

Megaflow entries cache the *action program* of the whole pipeline
traversal; a hit replays it without touching any flow table.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Mapping

from repro.net.bits import lowest_differing_bit
from repro.openflow.actions import Action
from repro.openflow.fields import field_by_name
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.instructions import ApplyActions, ClearActions, WriteActions
from repro.openflow.pipeline import Verdict
from repro.packet import parser as pp

#: Default megaflow capacity (the OVS flow limit is configurable; the DPDK
#: datapath defaults to the order of tens of thousands of flows).
DEFAULT_CAPACITY = 65536


class WildcardMode(enum.Enum):
    FIELD = "field"
    BIT_TRACKING = "bit"


#: A megaflow mask: sorted ``(field, mask_bits)`` pairs.
MaskSig = tuple[tuple[str, int], ...]


#: One replay step: (meter or None, actions, the rule to credit or None).
#: Steps mirror the flow entries the slow path traversed, so replay can
#: stop exactly where the interpreter would (drop mid-path, fired meter).
ProgramStep = tuple

class MegaflowEntry:
    """One disjoint wildcard entry: mask + masked key + a replay program.

    The program's per-step rule references keep per-rule statistics and
    idle timeouts truthful on cache hits (as OVS's revalidators push
    datapath flow stats up to the rules), and per-step meters enforce
    current rate limits at replay time.
    """

    __slots__ = (
        "sig",
        "masked_key",
        "program",
        "dropped",
        "hits",
        "_dead",
        "generation",
        "gen_cell",
        "entry_id",
    )

    _next_id = 0

    def __init__(
        self,
        sig: MaskSig,
        masked_key: tuple,
        program: tuple[ProgramStep, ...] = (),
        dropped: bool = False,
        actions: "tuple[Action, ...] | None" = None,
        stat_entries: tuple = (),
    ):
        if actions is not None:
            # Convenience: a flat action list becomes a single step.
            program = program + ((None, tuple(actions), None),)
            if stat_entries:
                program = tuple(
                    (None, (), e) for e in stat_entries
                ) + program
        self.sig = sig
        self.masked_key = masked_key
        self.program = tuple(program)
        self.dropped = dropped
        self.hits = 0
        self._dead = False
        #: generation stamp + the owning cache's shared generation cell.
        #: The entry is dead once the cell advances past its stamp — a
        #: whole-cache invalidation is then one integer increment, not a
        #: walk marking every entry (the O(cache) loop the collapse sweep
        #: paid per flow-mod).
        self.generation = 0
        self.gen_cell: "list[int] | None" = None
        MegaflowEntry._next_id += 1
        self.entry_id = MegaflowEntry._next_id

    @property
    def dead(self) -> bool:
        cell = self.gen_cell
        return self._dead or (cell is not None and cell[0] != self.generation)

    @dead.setter
    def dead(self, value: bool) -> None:
        # Individual kills (eviction, revalidation) stay per-entry flags.
        self._dead = bool(value)

    @property
    def actions(self) -> tuple[Action, ...]:
        """The flattened action list (inspection/cost accounting)."""
        return tuple(a for _m, acts, _e in self.program for a in acts)

    @property
    def stat_entries(self) -> tuple:
        return tuple(e for _m, _a, e in self.program if e is not None)

    def __repr__(self) -> str:
        fields = ",".join(f"{n}/{m:#x}" for n, m in self.sig)
        return f"MegaflowEntry({fields} -> {len(self.actions)} actions)"


class _MegaSubtable:
    """All megaflow entries sharing one mask."""

    __slots__ = ("sig", "entries", "hits")

    def __init__(self, sig: MaskSig):
        self.sig = sig
        self.entries: dict[tuple, MegaflowEntry] = {}
        self.hits = 0

    def key_of(self, key: Mapping[str, "int | None"]) -> tuple:
        # None (absent header) is part of the masked key: a megaflow built
        # from a TCP packet must not cover a UDP packet.
        return tuple(
            (key.get(name) & mask) if key.get(name) is not None else None
            for name, mask in self.sig
        )


class MegaflowCache:
    """Tuple-space-search cache over disjoint megaflow entries."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        #: shared one-element generation cell; every inserted entry holds
        #: a reference, so ``invalidate()`` kills them all in O(1).
        self._gen_cell: list[int] = [0]
        self._subtables: dict[MaskSig, _MegaSubtable] = {}
        self._lru: "OrderedDict[tuple[MaskSig, tuple], MegaflowEntry]" = OrderedDict()
        #: a whole-cache invalidation happened and the container clear is
        #: still owed: swept at the next packet-path touch, so N flow-mods
        #: between packets cost N generation bumps + ONE sweep.
        self._sweep_pending = False
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.invalidations = 0

    def _sweep(self) -> None:
        if self._sweep_pending:
            self._subtables.clear()
            self._lru.clear()
            self._sweep_pending = False

    def __len__(self) -> int:
        self._sweep()
        return len(self._lru)

    @property
    def subtable_count(self) -> int:
        self._sweep()
        return len(self._subtables)

    def lookup(
        self, key: Mapping[str, "int | None"]
    ) -> tuple["MegaflowEntry | None", int]:
        """Search every subtable; returns (entry, subtables_probed).

        Entries are disjoint so the search cannot early-exit on priority —
        it stops at the first hit (ordering subtables by hit count keeps
        frequently used masks near the front, as OVS does).
        """
        self._sweep()
        probed = 0
        found: MegaflowEntry | None = None
        for sub in self._subtables.values():
            probed += 1
            entry = sub.entries.get(sub.key_of(key))
            if entry is not None:
                sub.hits += 1
                entry.hits += 1
                found = entry
                break
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
            self._lru.move_to_end((found.sig, found.masked_key))
        return found, probed

    def insert(self, entry: MegaflowEntry) -> None:
        self._sweep()
        entry.gen_cell = self._gen_cell
        entry.generation = self._gen_cell[0]
        entry._dead = False  # re-insertion after invalidation revives
        sub = self._subtables.get(entry.sig)
        if sub is None:
            sub = self._subtables[entry.sig] = _MegaSubtable(entry.sig)
        sub.entries[entry.masked_key] = entry
        self._lru[(entry.sig, entry.masked_key)] = entry
        self._lru.move_to_end((entry.sig, entry.masked_key))
        self.insertions += 1
        if len(self._lru) > self.capacity:
            (old_sig, old_key), old = self._lru.popitem(last=False)
            old.dead = True
            old_sub = self._subtables.get(old_sig)
            if old_sub is not None:
                old_sub.entries.pop(old_key, None)
                if not old_sub.entries:
                    del self._subtables[old_sig]
            self.evictions += 1

    def invalidate(self) -> None:
        """The brute-force flush OVS performs on essentially any change.

        Generation-tagged: advancing the shared cell marks every issued
        entry dead at once (external holders — the EMC's microflow refs —
        observe it through :attr:`MegaflowEntry.dead`), so the flush is
        O(1) instead of a walk over the whole cache per flow-mod. The
        container clear is *deferred* to the next packet-path touch: a
        reinstall batch of N mods pays N integer bumps plus one sweep,
        not N × O(occupancy) dict clears — the reactive install path's
        per-collapse-sweep cost the ROADMAP flagged at 10⁶ flows.
        """
        self._gen_cell[0] += 1
        self._sweep_pending = bool(self._lru)
        self.invalidations += 1

    def invalidate_overlapping(self, match) -> int:
        """Revalidation-style partial flush: kill only megaflows whose key
        region intersects ``match`` (a changed rule can only affect those).

        Models the cheaper end of OVS cache maintenance; the paper's
        critique targets the brute-force default, but revalidators that
        narrow the damage are the natural comparison point for Fig. 18's
        update-intensity sweep.
        """
        from repro.openflow.fields import field_by_name

        self._sweep()
        killed = 0
        for (sig, masked_key), entry in list(self._lru.items()):
            overlaps = True
            for (name, mask), value in zip(sig, masked_key):
                constraint = match.constraint(name)
                if constraint is None or value is None:
                    continue
                mvalue, mmask = constraint
                common = mask & mmask
                if (value & common) != (mvalue & common):
                    overlaps = False
                    break
            if overlaps:
                entry.dead = True
                del self._lru[(sig, masked_key)]
                sub = self._subtables.get(sig)
                if sub is not None:
                    sub.entries.pop(masked_key, None)
                    if not sub.entries:
                        del self._subtables[sig]
                killed += 1
        if killed:
            self.invalidations += 1
        return killed

    def entries(self) -> list[MegaflowEntry]:
        self._sweep()
        return list(self._lru.values())


# -- wildcard generation --------------------------------------------------------


def _add_prereq_fields(bits: dict[str, int], proto_required: int) -> None:
    """Unwildcard the fields that prove a protocol prerequisite."""
    if proto_required & (pp.PROTO_IPV4 | pp.PROTO_ARP | pp.PROTO_IPV6):
        bits["eth_type"] = field_by_name("eth_type").max_value
    if proto_required & (
        pp.PROTO_TCP | pp.PROTO_UDP | pp.PROTO_ICMP | pp.PROTO_ICMP6 | pp.PROTO_SCTP
    ):
        bits["eth_type"] = field_by_name("eth_type").max_value
        bits["ip_proto"] = field_by_name("ip_proto").max_value
    if proto_required & pp.PROTO_VLAN:
        bits.setdefault("vlan_vid", 0)


def wildcards_from_trace(
    verdict: Verdict,
    key: Mapping[str, "int | None"],
    mode: WildcardMode = WildcardMode.FIELD,
) -> MaskSig:
    """Compute the megaflow mask from a traced slow-path traversal.

    ``verdict`` must come from the reference interpreter with ``trace=True``
    so that ``verdict.probed`` holds every entry examined per table.
    """
    bits: dict[str, int] = {}
    matched = {id(entry) for _tid, entry in verdict.path if entry is not None}
    for _tid, probed in verdict.probed:
        for entry in probed:
            if mode is WildcardMode.FIELD or id(entry) in matched:
                for name, (_value, mask) in entry.match.items():
                    bits[name] = bits.get(name, 0) | mask
                _add_prereq_fields(bits, entry.match.required_protos())
            else:
                _add_miss_proof(bits, entry, key)
    # A zero mask is meaningful: it checks header *presence* only.
    return tuple(sorted(bits.items()))


def _add_miss_proof(
    bits: dict[str, int], entry: FlowEntry, key: Mapping[str, "int | None"]
) -> None:
    """BIT_TRACKING: pin the single lowest-order bit disproving ``entry``."""
    for name, (value, mask) in entry.match.items():
        fdef = field_by_name(name)
        actual = key.get(name)
        if actual is None:
            # The packet lacks the header: absence is the proof.
            _add_prereq_fields(bits, fdef.proto_required)
            return
        if (actual & mask) != value:
            pos = lowest_differing_bit(actual & mask, value, fdef.width)
            assert pos is not None
            bits[name] = bits.get(name, 0) | (1 << (fdef.width - pos))
            return
    # The entry actually matched on fields; it must have failed on a
    # protocol prerequisite instead.
    _add_prereq_fields(bits, entry.match.required_protos())


def replay_program(verdict: Verdict) -> tuple[ProgramStep, ...]:
    """Build the grouped replay program from a traced traversal.

    One step per matched entry — (meter, apply-actions, the entry for stat
    attribution) — plus a final step carrying the surviving write-action
    set (outputs last), mirroring the interpreter. Metadata writes are
    omitted: they only influence later lookups, which the cached decision
    already incorporates.
    """
    from repro.openflow.actions import Output
    from repro.openflow.meters import MeterInstruction

    steps: list[ProgramStep] = []
    write_set: list[Action] = []
    for _tid, entry in verdict.path:
        if entry is None:
            break
        meter = None
        actions: list[Action] = []
        for instr in entry.instructions:
            if isinstance(instr, MeterInstruction):
                meter = instr
            elif isinstance(instr, ApplyActions):
                actions.extend(instr.actions)
            elif isinstance(instr, WriteActions):
                write_set.extend(instr.actions)
            elif isinstance(instr, ClearActions):
                write_set.clear()
        steps.append((meter, tuple(actions), entry))
    if write_set:
        ordered = [a for a in write_set if not isinstance(a, Output)] + [
            a for a in write_set if isinstance(a, Output)
        ]
        steps.append((None, tuple(ordered), None))
    return tuple(steps)


def action_program(verdict: Verdict) -> tuple[Action, ...]:
    """The flattened action list of :func:`replay_program` (compat helper)."""
    return tuple(a for _m, acts, _e in replay_program(verdict) for a in acts)


def build_megaflow(
    verdict: Verdict,
    key: Mapping[str, "int | None"],
    mode: WildcardMode = WildcardMode.FIELD,
) -> MegaflowEntry:
    """Construct the megaflow entry a traced slow-path pass teaches us."""
    sig = wildcards_from_trace(verdict, key, mode)
    masked_key = tuple(
        (key.get(name) & mask) if key.get(name) is not None else None
        for name, mask in sig
    )
    return MegaflowEntry(
        sig=sig,
        masked_key=masked_key,
        program=replay_program(verdict),
        dropped=verdict.dropped,
    )
