"""Tests for the assembled OVS switch: hierarchy, stats, invalidation."""

from repro.openflow.flow_table import FlowTable, TableMissPolicy
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.pipeline import Pipeline
from repro.ovs import OvsSwitch
from repro.packet import PacketBuilder
from repro.usecases import firewall


def http_pkt(sport=1000):
    return (PacketBuilder(in_port=firewall.EXTERNAL).eth()
            .ipv4(src="198.51.100.9", dst=firewall.SERVER_IP)
            .tcp(src_port=sport, dst_port=80).build())


class TestHierarchy:
    def test_first_packet_upcalls(self):
        sw = OvsSwitch(firewall.build_single_stage())
        sw.process(http_pkt())
        assert sw.stats.vswitchd_hits == 1
        assert len(sw.megaflow) == 1
        assert len(sw.emc) == 1

    def test_second_packet_hits_microflow(self):
        sw = OvsSwitch(firewall.build_single_stage())
        sw.process(http_pkt())
        sw.process(http_pkt())
        assert sw.stats.microflow_hits == 1

    def test_ttl_change_misses_microflow_hits_megaflow(self):
        sw = OvsSwitch(firewall.build_single_stage())
        sw.process(http_pkt())
        changed = http_pkt()
        changed.data[14 + 8] = 17  # different TTL: EMC key changes
        sw.process(changed)
        assert sw.stats.microflow_hits == 0
        assert sw.stats.megaflow_hits == 1

    def test_different_sport_same_megaflow(self):
        # No rule matches tcp_src, so one megaflow covers all source ports.
        sw = OvsSwitch(firewall.build_single_stage())
        sw.process(http_pkt(1000))
        sw.process(http_pkt(2000))
        assert len(sw.megaflow) == 1
        assert sw.stats.megaflow_hits == 1

    def test_verdicts_identical_across_levels(self):
        sw = OvsSwitch(firewall.build_single_stage())
        reference = firewall.build_single_stage()
        verdicts = [sw.process(http_pkt()).summary() for _ in range(3)]
        expected = reference.process(http_pkt()).summary()
        assert all(v == expected for v in verdicts)

    def test_emc_thrash_falls_back_to_megaflow(self):
        sw = OvsSwitch(firewall.build_single_stage(), emc_capacity=4)
        for sport in range(1000, 1020):
            sw.process(http_pkt(sport))
        # Second pass: EMC (size 4) can't hold 20 microflows, but the one
        # megaflow covers them all.
        before = sw.stats.megaflow_hits
        for sport in range(1000, 1020):
            sw.process(http_pkt(sport))
        assert sw.stats.megaflow_hits > before
        assert sw.vswitchd.upcalls == 1


class TestControllerPath:
    def test_miss_to_controller_not_cached(self):
        t = FlowTable(0, miss_policy=TableMissPolicy.CONTROLLER)
        punted = []
        sw = OvsSwitch(Pipeline([t]), packet_in_handler=punted.append)
        sw.process(http_pkt())
        sw.process(http_pkt())
        assert len(punted) == 2  # every packet punts; nothing cached
        assert len(sw.megaflow) == 0
        assert sw.stats.controller_hits == 2


class TestInvalidation:
    def test_flow_mod_flushes_both_caches(self):
        sw = OvsSwitch(firewall.build_single_stage())
        sw.process(http_pkt())
        assert len(sw.megaflow) == 1
        sw.apply_flow_mod(
            FlowMod(FlowModCommand.ADD, 0, Match(tcp_dst=22), priority=25)
        )
        assert len(sw.megaflow) == 0
        assert len(sw.emc) == 0

    def test_flow_mod_changes_behavior_immediately(self):
        sw = OvsSwitch(firewall.build_single_stage())
        assert sw.process(http_pkt()).forwarded
        sw.apply_flow_mod(
            FlowMod(
                FlowModCommand.DELETE,
                0,
                Match(in_port=firewall.EXTERNAL, ipv4_dst=firewall.SERVER_IP,
                      tcp_dst=80),
            )
        )
        assert not sw.process(http_pkt()).forwarded

    def test_delete_command(self):
        sw = OvsSwitch(firewall.build_single_stage())
        before = len(sw.pipeline.table(0))
        sw.apply_flow_mod(
            FlowMod(FlowModCommand.DELETE, 0, Match(in_port=firewall.INTERNAL))
        )
        assert len(sw.pipeline.table(0)) == before - 1


class TestStats:
    def test_rates_sum_to_one(self):
        sw = OvsSwitch(firewall.build_single_stage())
        for sport in range(1000, 1050):
            sw.process(http_pkt(sport))
        rates = sw.stats.rates()
        assert abs(sum(rates.values()) - 1.0) < 1e-9

    def test_reset(self):
        sw = OvsSwitch(firewall.build_single_stage())
        sw.process(http_pkt())
        sw.stats.reset()
        assert sw.stats.packets == 0
