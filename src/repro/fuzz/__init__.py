"""Differential compiler fuzzing for the ESWITCH backend matrix.

The subsystem has four parts, one module each:

* :mod:`repro.fuzz.gen` — seeded random pipelines (one template rung per
  table) and boundary-biased traffic/flow-mod schedules;
* :mod:`repro.fuzz.scenario` — the JSON-round-trippable test-case
  container pinned in ``tests/fuzz_corpus/``;
* :mod:`repro.fuzz.diff` — the differential oracle across fused,
  trampoline, linked-list, OVS-model, and sharded backends;
* :mod:`repro.fuzz.shrink` — greedy minimization of failures into
  corpus seeds;
* :mod:`repro.fuzz.outage` — the session-layer parity harness: a
  disconnect-reconnect run must converge to the never-disconnected
  run's verdicts after resync.

Entry points: ``repro fuzz`` (CLI) and ``tests/test_differential_fuzz.py``.
"""

from repro.fuzz.diff import DEFAULT_WORKERS, Divergence, diverges, run_scenario, run_seed
from repro.fuzz.gen import (
    GenerationError,
    RUNGS,
    generate,
    generate_churn,
    generate_fabric_outage,
    generate_large,
)
from repro.fuzz.outage import run_outage_parity
from repro.fuzz.scenario import Scenario, packet_to_obj
from repro.fuzz.shrink import minimize

__all__ = [
    "DEFAULT_WORKERS",
    "Divergence",
    "GenerationError",
    "RUNGS",
    "Scenario",
    "diverges",
    "generate",
    "generate_churn",
    "generate_fabric_outage",
    "generate_large",
    "minimize",
    "packet_to_obj",
    "run_outage_parity",
    "run_scenario",
    "run_seed",
]
