"""CPU platform descriptions.

``XEON_E5_2620`` transcribes Table 1 of the paper (the system-under-test);
``ATOM_C2750`` approximates the "slower 2.40 GHz Intel Atom platform" the
multi-core experiment (Fig. 19) downgrades to so forwarding stays
CPU-bounded rather than IO-bounded.

Cache sizes are expressed in 64-byte lines, which is the granularity the
datapaths report their memory touches at.
"""

from __future__ import annotations

from dataclasses import dataclass

CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class Platform:
    """A CPU model for the cycle-cost engine."""

    name: str
    freq_hz: float
    l1_lines: int
    l2_lines: int
    l3_lines: int
    lat_l1: int
    lat_l2: int
    lat_l3: int
    lat_dram: int
    cores: int = 6
    #: NIC line-rate ceiling in packets/sec for 64-byte frames (Section 4.3:
    #: the XL710 "supports only about 23 Mpps packet rate with 64-byte
    #: packets"); None = not NIC-limited.
    nic_pps_limit: "float | None" = None
    #: CPI scaling of instruction-cost atoms relative to the Sandy Bridge
    #: reference the atoms were calibrated on (the in-order Atom retires
    #: far fewer instructions per cycle). Memory latencies are unscaled —
    #: they are already per-platform.
    cycle_factor: float = 1.0

    def latency(self, level: int) -> int:
        """Access latency in cycles for cache level 1–3 or DRAM (4)."""
        return (self.lat_l1, self.lat_l2, self.lat_l3, self.lat_dram)[level - 1]

    def pps(self, cycles_per_packet: float) -> float:
        """Convert a per-packet cycle cost to packets per second."""
        if cycles_per_packet <= 0:
            raise ValueError("cycles per packet must be positive")
        return self.freq_hz / cycles_per_packet


#: Table 1: Intel Xeon E5-2620 @ 2.00 GHz (Sandy Bridge), 32 KB L1d,
#: 256 KB L2, 15 MB L3; latencies L1=4, L2=12, L3=29 cycles; 40 Gb XL710.
XEON_E5_2620 = Platform(
    name="Intel Xeon E5-2620 @ 2.00GHz (Sandy Bridge)",
    freq_hz=2.0e9,
    l1_lines=32 * 1024 // CACHE_LINE_BYTES,
    l2_lines=256 * 1024 // CACHE_LINE_BYTES,
    l3_lines=15 * 1024 * 1024 // CACHE_LINE_BYTES,
    lat_l1=4,
    lat_l2=12,
    lat_l3=29,
    lat_dram=150,
    cores=6,
    nic_pps_limit=23e6,
)

#: The 2.40 GHz Atom used for the CPU-scalability experiment: smaller,
#: slower caches and no L3 worth speaking of (modeled as a thin 4 MB LLC).
ATOM_C2750 = Platform(
    name="Intel Atom @ 2.40GHz",
    freq_hz=2.4e9,
    l1_lines=24 * 1024 // CACHE_LINE_BYTES,
    l2_lines=1024 * 1024 // CACHE_LINE_BYTES,
    l3_lines=4 * 1024 * 1024 // CACHE_LINE_BYTES,
    lat_l1=3,
    lat_l2=15,
    lat_l3=40,
    lat_dram=180,
    cores=8,
    nic_pps_limit=None,
    cycle_factor=5.0,
)
