#!/usr/bin/env python3
"""The telco access gateway (vPE) of Fig. 8, with reactive admission.

Starts the gateway *unprovisioned*: the first packet of every subscriber
misses its per-CE NAT table and is punted to the controller, which admits
the user and installs the NAT rules (two flow-mods). Subsequent packets
take the compiled fast path. The example then measures the provisioned
gateway and compares the measured rate against the paper's analytic
bounds (Section 4.4).

Run:  python examples/access_gateway.py
"""

from repro.controller import GatewayController
from repro.core import ESwitch
from repro.simcpu.model import gateway_model
from repro.traffic import measure
from repro.traffic.nfpa import auto_params
from repro.usecases import gateway

N_CE, USERS = 4, 5


def main() -> None:
    pipeline, fib = gateway.build(
        n_ce=N_CE, users_per_ce=USERS, n_prefixes=2_000, provision_users=False
    )
    switch = ESwitch.from_pipeline(pipeline)
    controller = GatewayController(switch, n_ce=N_CE, users_per_ce=USERS)
    switch.packet_in_handler = controller

    flows = gateway.traffic(fib, N_CE * USERS, n_ce=N_CE, users_per_ce=USERS)

    print("=== reactive admission ===")
    punted = forwarded = 0
    for round_no in range(2):
        for i in range(len(flows)):
            verdict = switch.process(flows[i].copy())
            if verdict.to_controller:
                punted += 1
            elif verdict.forwarded:
                forwarded += 1
        print(
            f"round {round_no + 1}: punted={punted} forwarded={forwarded} "
            f"admitted={len(controller.admitted)} users"
        )
    print(f"update engine: {switch.update_stats}")

    print("\n=== fast-path templates after provisioning ===")
    print(switch.table_kinds())

    print("\n=== measured vs modeled (Section 4.4) ===")
    model = gateway_model()
    lb_pps, ub_pps = model.bounds()
    n, w = auto_params(1_000)
    result = measure(switch, gateway.traffic(fib, 1_000, n_ce=N_CE, users_per_ce=USERS),
                     n_packets=min(n, 15_000), warmup=min(w, 5_000))
    print("Fig. 20 rundown:")
    for name, cycles, comment in model.rundown():
        print(f"  {name:18} {cycles:10}  {comment}")
    print(f"model-ub: {ub_pps / 1e6:5.1f} Mpps   model-lb: {lb_pps / 1e6:5.1f} Mpps")
    print(f"measured: {result.mpps:5.1f} Mpps   ({result.cycles_per_packet:.0f} cycles/packet)")


if __name__ == "__main__":
    main()
