"""Tests for automatic performance-model derivation (Section 5 extension)."""

import pytest

from repro.core import ESwitch
from repro.core.autoderive import derive_model
from repro.simcpu.model import gateway_model
from repro.traffic import measure
from repro.usecases import firewall, gateway, l2, l3


class TestDeriveModel:
    def test_l2_model_matches_measurement(self):
        p, macs = l2.build(100)
        sw = ESwitch.from_pipeline(p)
        model = derive_model(sw)
        m = measure(sw, l2.traffic(macs, 50), n_packets=2_000, warmup=500)
        lo, hi = model.cycle_bounds()
        assert lo * 0.95 <= m.cycles_per_packet <= hi * 1.1

    def test_l3_model_has_two_lpm_accesses(self):
        p, _fib = l3.build(100)
        model = derive_model(ESwitch.from_pipeline(p))
        lpm_stages = [s for s in model.stages if s.name.startswith("LPM")]
        assert len(lpm_stages) == 1
        assert lpm_stages[0].mem_accesses == 2

    def test_gateway_derived_close_to_handwritten(self):
        """The auto-derived gateway model must land near the paper's
        hand-built Fig. 20 model (within the runtime-dispatch margin)."""
        p, _fib = gateway.build(n_ce=10, users_per_ce=20, n_prefixes=1000)
        sw = ESwitch.from_pipeline(p)
        derived = derive_model(sw)
        hand = gateway_model()
        # The derived model honestly counts what the hand model folds away
        # (runtime dispatch, goto trampolines, Table 0's access treated as
        # variable rather than pinned to L1), so allow a 20% envelope.
        for level in (1, 2, 3):
            assert derived.cycles(level) == pytest.approx(
                hand.cycles(level), rel=0.20
            )

    def test_gateway_bounds_bracket_measurement(self):
        p, fib = gateway.build(n_ce=10, users_per_ce=20, n_prefixes=1000)
        sw = ESwitch.from_pipeline(p)
        model = derive_model(sw)
        m = measure(sw, gateway.traffic(fib, 500), n_packets=4_000, warmup=1_500)
        lo, hi = model.cycle_bounds()
        assert lo * 0.9 <= m.cycles_per_packet <= hi * 1.1

    def test_explicit_path_selection(self):
        p, _fib = gateway.build(n_ce=2, users_per_ce=2, n_prefixes=100)
        sw = ESwitch.from_pipeline(p)
        reverse = derive_model(sw, path=[0, gateway.REVERSE_TABLE])
        names = [s.name for s in reverse.stages]
        assert any(str(gateway.REVERSE_TABLE) in n for n in names)
        assert not any("LPM" in n for n in names)

    def test_requote_after_update(self):
        """Updates change the model: a fallen-back table costs more."""
        from repro.openflow.instructions import ApplyActions
        from repro.openflow.actions import Output
        from repro.openflow.match import Match
        from repro.openflow.messages import FlowMod, FlowModCommand
        from repro.core import CompileConfig

        p, _macs = l2.build(50)
        sw = ESwitch.from_pipeline(p, config=CompileConfig(decompose=False))
        before = derive_model(sw).cycles(1)
        sw.apply_flow_mod(
            FlowMod(FlowModCommand.ADD, 0, Match(tcp_dst=80), priority=5,
                    instructions=(ApplyActions([Output(1)]),))
        )
        sw.process(l2.traffic(_macs, 1)[0].copy())  # flush lazy rebuilds
        after = derive_model(sw).cycles(1)
        assert after > before  # hash -> linked list fallback is costlier

    def test_firewall_direct_model(self):
        sw = ESwitch.from_pipeline(firewall.build_single_stage())
        model = derive_model(sw)
        assert any(s.name.startswith("direct code") for s in model.stages)
        lb, ub = model.bounds()
        assert 0 < lb <= ub
