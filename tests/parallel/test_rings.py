"""Shared-memory ring mechanics and teardown hygiene.

The ring is the persistent per-worker channel (ISSUE 7): a SPSC byte
ring over one ``multiprocessing.shared_memory`` segment, sequence-number
cursors, wrap marker, batched read-acks. These tests exercise the
mechanics the engine relies on — wraparound, backpressure via
:meth:`Ring.fits`, typed errors — and the hygiene rule: **segments never
outlive their owner**, whether the engine closes cleanly or a worker is
killed and respawned mid-run.
"""

import pickle

import pytest

from multiprocessing import shared_memory

from repro.core import ESwitch
from repro.parallel import (
    FaultInjector,
    FaultSpec,
    ShardedESwitch,
    rings,
)
from repro.usecases import gateway

from test_sharded import summarize

pytestmark = pytest.mark.skipif(
    not rings.shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)


def make_pair(capacity=4096):
    pair = rings.RingPair.create(capacity)
    return pair


class TestRingMechanics:
    def test_byte_round_trip(self):
        pair = make_pair()
        try:
            ring = pair.req
            ring.push(b"hello")
            ring.push(b"world!!")
            assert ring.pop() == b"hello"
            assert ring.pop() == b"world!!"
            ring.commit_reads()
            assert not ring.readable()
        finally:
            pair.destroy()

    def test_wraparound_many_records(self):
        """Thousands of variable-size records through a small ring —
        every wrap boundary crossed, every record intact."""
        pair = make_pair(capacity=2048)
        try:
            ring = pair.req
            for i in range(5000):
                frame = bytes([i % 251]) * (1 + (i * 37) % 300)
                assert ring.fits(len(frame))
                ring.push(frame)
                got = ring.pop()
                ring.commit_reads()
                assert got == frame, f"record {i} damaged across wrap"
        finally:
            pair.destroy()

    def test_interleaved_backlog_across_wrap(self):
        """A reader lagging the writer by a few records stays coherent
        through wrap points (the engine's depth-2 pipelining shape)."""
        pair = make_pair(capacity=4096)
        try:
            ring = pair.req
            sent = []
            seq = 0
            for round_ in range(400):
                while len(sent) < 3:
                    frame = seq.to_bytes(4, "little") * (5 + seq % 40)
                    if not ring.fits(len(frame)):
                        break
                    ring.push(frame)
                    sent.append(frame)
                    seq += 1
                assert ring.pop() == sent.pop(0)
                ring.commit_reads()
        finally:
            pair.destroy()

    def test_fits_is_static_and_push_is_occupancy_checked(self):
        """``fits`` answers the *static* question (could this frame ever
        fit, with margin for the engine's two-in-flight worst case);
        ``push`` enforces live occupancy with :class:`RingFull`."""
        pair = make_pair(capacity=1024)
        try:
            ring = pair.req
            big = b"x" * 2048
            assert not ring.fits(len(big))       # never fits: reject early
            with pytest.raises(rings.RingFull):
                ring.push(big)
            frame = b"y" * 64
            assert ring.fits(len(frame))          # statically fine...
            pushed = 0
            with pytest.raises(rings.RingFull):   # ...until occupancy says no
                for _ in range(1024):
                    ring.push(frame)
                    pushed += 1
            assert pushed > 0
            assert ring.fits(len(frame))          # static answer unchanged
            # Draining and acking restores push capacity.
            while ring.readable():
                ring.pop()
            ring.commit_reads()
            ring.push(frame)
        finally:
            pair.destroy()

    def test_closed_ring_raises_typed(self):
        pair = make_pair()
        pair.destroy()
        with pytest.raises(rings.RingClosed):
            pair.req.push(b"late")
        with pytest.raises(rings.RingClosed):
            pair.req.pop()

    def test_attach_sees_writes(self):
        pair = make_pair()
        try:
            peer = rings.attach_pair(pair.names, untrack=True)
            try:
                pair.req.push(b"cross-mapping")
                assert peer.req.pop() == b"cross-mapping"
                peer.req.commit_reads()
                assert pair.req.fits(pair.req.capacity // 8)
            finally:
                peer.close()
        finally:
            pair.destroy()

    def test_destroy_is_idempotent_and_unlinks(self):
        pair = make_pair()
        names = pair.names
        pair.destroy()
        pair.destroy()  # second destroy is a no-op, not an error
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


def _segment_gone(name: str) -> bool:
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    seg.close()
    return False


def _shard_ring_names(eng) -> "list[str]":
    return [name for slot in eng._slots
            if slot.shard is not None and slot.shard.rings is not None
            for name in slot.shard.rings.names]


class TestTeardownHygiene:
    def _scenario(self):
        pipeline, fib = gateway.build(n_ce=2, users_per_ce=8, n_prefixes=16)
        pkts = gateway.traffic(fib, 48, n_ce=2, users_per_ce=8)
        return pipeline, pkts

    def test_close_unlinks_all_segments(self):
        pipeline, pkts = self._scenario()
        eng = ShardedESwitch(pipeline, workers=2, backend="process",
                             transport="ring")
        names = _shard_ring_names(eng)
        assert len(names) == 4  # two segments per worker
        eng.process_burst(pkts)
        eng.close()
        assert all(_segment_gone(n) for n in names)

    def test_respawn_does_not_accumulate_segments(self):
        """Kill a ring-transport worker repeatedly: each respawn must
        unlink the dead generation's segments before creating its own."""
        pipeline, pkts = self._scenario()
        seq = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        inj = FaultInjector(
            FaultSpec(shard=0, cmd="burst", when="before", generation=0),
            FaultSpec(shard=0, cmd="burst", when="before", generation=1),
        )
        eng = ShardedESwitch(pipeline, workers=2, backend="process",
                             transport="ring", fault_injector=inj,
                             retry_backoff=0.001)
        try:
            generations = [set(_shard_ring_names(eng))]
            for i in range(4):
                burst = [p.copy() for p in pkts[i * 12:(i + 1) * 12]]
                want = summarize(
                    seq.process_burst([p.copy() for p in burst]),
                    seq.pipeline,
                )
                got = summarize(eng.process_burst(burst), eng.pipeline)
                assert got == want
                generations.append(set(_shard_ring_names(eng)))
            assert eng.health().respawns == 2
            assert not eng.health().degraded
            live = generations[-1]
            retired = set().union(*generations[:-1]) - live
            assert retired, "respawns should have rotated ring segments"
            assert all(_segment_gone(n) for n in retired)
        finally:
            eng.close()
        assert all(_segment_gone(n) for n in set().union(*generations))
