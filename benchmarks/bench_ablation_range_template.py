"""Ablation: the range-search template extension vs the compound hash.

Section 3.1 floats "range search for port matches" as a future table
template. This bench quantifies its trade on a firewall-style port-block
table (a few contiguous allow-ranges expanded into thousands of exact
rules): the hash template stores one entry per port; the range template
stores one interval per block. Lookup costs are comparable; the win is
memory footprint and build/update cost.
"""

from figshared import publish, render_table
from repro.core.analysis import CompileConfig, TemplateKind
from repro.core.codegen import compile_table
from repro.openflow.actions import Output
from repro.openflow.fields import field_by_name
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.match import Match
from repro.packet import PacketBuilder
from repro.packet.parser import parse
from repro.simcpu.platform import XEON_E5_2620
from repro.simcpu.recorder import CycleMeter

BLOCKS = ((1024, 2047, 1), (5000, 5999, 2), (8080, 8095, 3))


def table():
    t = FlowTable(0)
    for lo, hi, out in BLOCKS:
        for port in range(lo, hi + 1):
            t.add(FlowEntry(Match(tcp_dst=port), priority=1, actions=[Output(out)]))
    t.add(FlowEntry(Match(), priority=0, actions=[]))
    return t


def lookup_cycles(compiled, dport) -> float:
    pkt = PacketBuilder().eth().ipv4().tcp(dst_port=dport).build()
    view = parse(pkt)
    etype = field_by_name("eth_type").extract(view) or 0
    meter = CycleMeter(XEON_E5_2620)
    for _ in range(32):
        compiled.fn(pkt.data, pkt, view.l3, view.l4, view.proto, etype, view.l4_proto, meter)
    meter.reset()
    for _ in range(64):
        meter.begin_packet()
        compiled.fn(pkt.data, pkt, view.l3, view.l4, view.proto, etype, view.l4_proto, meter)
        meter.end_packet()
    return meter.mean_cycles_per_packet


def test_ablation_range_template(benchmark):
    n_rules = sum(hi - lo + 1 for lo, hi, _o in BLOCKS)
    hashed = compile_table(table(), kind=TemplateKind.HASH)
    ranged = compile_table(table(), CompileConfig(enable_range=True))
    assert ranged.kind is TemplateKind.RANGE

    assert hashed.hash_store is not None
    hash_slots = hashed.hash_store.slot_count
    range_slots = len(ranged.namespace["_STARTS"])

    probe = 5500
    rows = [
        ("hash", n_rules, hash_slots, f"{lookup_cycles(hashed, probe):.1f}"),
        ("range", n_rules, range_slots, f"{lookup_cycles(ranged, probe):.1f}"),
    ]
    publish(
        "ablation_range_template",
        render_table(
            "Ablation: range template vs compound hash "
            f"({len(BLOCKS)} port blocks, {n_rules} rules)",
            ("template", "rules", "store entries", "cycles/lookup"),
            rows,
        ),
    )

    # The range template compresses thousands of rules into 3 intervals.
    assert range_slots == len(BLOCKS)
    assert hash_slots >= n_rules  # oversized collision-free store
    # Lookup stays in the same ballpark as the constant-time hash.
    assert lookup_cycles(ranged, probe) < 2.5 * lookup_cycles(hashed, probe)
    # Functional agreement on the boundaries.
    from repro.simcpu.recorder import NULL_METER

    for dport in (1023, 1024, 2047, 2048, 5999, 8095, 9000):
        pkt = PacketBuilder().eth().ipv4().tcp(dst_port=dport).build()
        view = parse(pkt)
        etype = field_by_name("eth_type").extract(view) or 0
        a = hashed.fn(pkt.data, pkt, view.l3, view.l4, view.proto, etype, view.l4_proto, NULL_METER)
        b = ranged.fn(pkt.data, pkt, view.l3, view.l4, view.proto, etype, view.l4_proto, NULL_METER)
        assert a.apply_actions == b.apply_actions, dport

    benchmark(lambda: lookup_cycles(ranged, probe))
