"""Tests for the RFC 1071 checksum."""

from hypothesis import given, strategies as st

from repro.net.checksum import internet_checksum, verify_checksum


def test_known_vector():
    # Classic example from RFC 1071 discussions.
    data = bytes.fromhex("45000073000040004011b861c0a80001c0a800c7")
    # Zero the checksum field and recompute.
    stripped = data[:10] + b"\x00\x00" + data[12:]
    assert internet_checksum(stripped) == 0xB861


def test_empty():
    assert internet_checksum(b"") == 0xFFFF


def test_odd_length_padding():
    assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")


@given(st.binary(min_size=2, max_size=64).filter(lambda d: len(d) % 2 == 0))
def test_verify_with_embedded_checksum(data):
    # The checksum word must be 16-bit aligned, as in real headers.
    checksum = internet_checksum(data)
    assert verify_checksum(data + checksum.to_bytes(2, "big"))


@given(st.binary(max_size=64))
def test_checksum_in_range(data):
    assert 0 <= internet_checksum(data) <= 0xFFFF
