"""The leaf–spine fabric: many switches, one control plane.

The ROADMAP's "production system" composition: N access **leaves** (each
a full vPE gateway pipeline, reactive NAT admission per subscriber) and
M **spines** (proactive RIB-only routers) under a single
:class:`~repro.controller.gateway_controller.GatewayController`, which
owns one :class:`~repro.controller.session.ControllerSession` per switch
over an independently-configurable :class:`~repro.controller.channels.
LossyChannel`.

Topology conventions:

* every leaf uplinks to every spine (full bipartite leaf–spine);
  leaf-side uplink ports are ``UPLINK_PORT_BASE + spine_index``,
  spine-side downlink ports are ``DOWNLINK_PORT_BASE + leaf_index``
  (the ``port_map`` records both directions);
* upstream packets a leaf forwards out its network side are sprayed
  across spines by the same RSS-style CRC-32 flow hash the sharded
  engine scatters with (:func:`repro.parallel.rss.shard_of`) — ECMP
  that is flow-sticky and deterministic per seed;
* every subscriber has one **home leaf** (a CE is physically wired to
  one access switch): ``leaf_of(ce, user)`` is a deterministic spread
  of CEs over leaves. The shared controller installs rules *via* the
  punting leaf's session, so one controller instance serves the whole
  fabric while each leaf's channel can fail independently.

All time is virtual: :meth:`Fabric.advance` moves every session clock
together, so outage detection, resync, and soak telemetry replay
bit-for-bit under a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.controller.channels import LossyChannel
from repro.controller.gateway_controller import GatewayController
from repro.controller.session import ControllerSession, FailMode
from repro.core import ESwitch
from repro.net.addresses import int_to_ip
from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline
from repro.parallel.rss import shard_of
from repro.usecases import gateway

#: Leaf-side port leading to spine ``j`` is ``UPLINK_PORT_BASE + j``.
UPLINK_PORT_BASE = 100
#: Spine-side port leading to leaf ``i`` is ``DOWNLINK_PORT_BASE + i``.
DOWNLINK_PORT_BASE = 10


class _LeafControllerFace:
    """The per-leaf packet-in adapter in front of the shared controller.

    A session delivers punts to a plain callable; this face curries the
    leaf's own session into :meth:`GatewayController.handle` (``via=``)
    so NAT rules install into the switch that punted — through that
    leaf's lossy channel, not some global shortcut. It is also the
    attachment point for the ``controller_stall`` fault: while
    ``stalled`` the controller process is wedged and punts fall on the
    floor (counted, deterministic, reversible).
    """

    def __init__(self, controller: GatewayController):
        self.controller = controller
        self.session: "ControllerSession | None" = None  # wired by Fabric
        self.stalled = False
        self.stalled_drops = 0

    def __call__(self, packet_in) -> None:
        if self.stalled:
            self.stalled_drops += 1
            return
        self.controller.handle(packet_in, via=self.session)


@dataclass
class Leaf:
    """One access switch: gateway pipeline + session + controller face."""

    name: str
    index: int
    switch: object
    session: ControllerSession
    face: _LeafControllerFace
    uplink_ports: dict[str, int] = field(default_factory=dict)


@dataclass
class Spine:
    """One aggregation switch: proactive RIB, no reactive state."""

    name: str
    index: int
    switch: object
    session: ControllerSession
    downlink_ports: dict[str, int] = field(default_factory=dict)


@dataclass
class BurstOutcome:
    """What happened to one injected burst, end to end."""

    injected: int = 0
    served: int = 0        #: forwarded by the leaf AND by a spine
    punted: int = 0        #: leaf table-miss punts (to_controller)
    dropped: int = 0       #: dropped at either tier (incl. fail-secure)

    @property
    def served_fraction(self) -> float:
        return self.served / self.injected if self.injected else 1.0

    def absorb(self, other: "BurstOutcome") -> None:
        self.injected += other.injected
        self.served += other.served
        self.punted += other.punted
        self.dropped += other.dropped


def spine_pipeline(fib) -> Pipeline:
    """A spine's RIB: the gateway FIB with real next-hop ports."""
    table = FlowTable(0, name="spine-rib")
    table.add_bulk(
        [
            FlowEntry(
                Match(ipv4_dst=f"{int_to_ip(value)}/{depth}"),
                priority=depth,
                actions=[Output(port)],
            )
            for value, depth, port in fib
        ]
    )
    table.add(FlowEntry(Match(), priority=0, actions=[]))  # no default route
    return Pipeline([table])


class Fabric:
    """N leaves + M spines under one controller (see module doc).

    Args:
        n_leaves / n_spines: topology size.
        n_ce / users_per_ce: subscriber population (every leaf carries
            the full per-CE table set; subscribers are pinned to their
            home leaf by :meth:`leaf_of`).
        n_prefixes: FIB size shared by leaf RIBs and spine RIBs.
        fail_mode: §6.4 mode for every leaf session.
        channel_for: ``(role, name, index) -> LossyChannel`` factory so
            each switch's channel is independently configurable; default
            is a mildly lossy controller link per leaf and a reliable
            one per spine, each with its own derived seed.
        leaf_factory: ``pipeline -> switch`` — swap in a
            :class:`~repro.parallel.engine.ShardedESwitch` here for
            multi-worker leaves (sessions synthesize punts for it).
        ecmp_seed: seed of the leaf→spine RSS spray.
    """

    def __init__(
        self,
        n_leaves: int = 4,
        n_spines: int = 2,
        n_ce: int = 8,
        users_per_ce: int = 8,
        n_prefixes: int = 200,
        fail_mode: FailMode = FailMode.STANDALONE,
        channel_for=None,
        leaf_factory=None,
        ecmp_seed: int = 0,
        fib_seed: int = 29,
        **session_kwargs,
    ):
        if n_leaves < 1 or n_spines < 1:
            raise ValueError("a fabric needs at least one leaf and one spine")
        if n_ce < n_leaves:
            raise ValueError("need at least one CE per leaf")
        self.n_leaves = n_leaves
        self.n_spines = n_spines
        self.n_ce = n_ce
        self.users_per_ce = users_per_ce
        self.ecmp_seed = ecmp_seed
        self.now = 0.0
        if channel_for is None:
            channel_for = self._default_channel
        if leaf_factory is None:
            leaf_factory = ESwitch.from_pipeline

        self.controller = GatewayController(
            None, n_ce=n_ce, users_per_ce=users_per_ce
        )

        self.leaves: list[Leaf] = []
        fib = None
        for i in range(n_leaves):
            pipeline, fib = gateway.build(
                n_ce=n_ce,
                users_per_ce=users_per_ce,
                n_prefixes=n_prefixes,
                provision_users=False,
                seed=fib_seed,
            )
            switch = leaf_factory(pipeline)
            face = _LeafControllerFace(self.controller)
            session = ControllerSession(
                switch,
                controller=face,
                channel=channel_for("leaf", f"leaf{i}", i),
                fail_mode=fail_mode,
                **session_kwargs,
            )
            face.session = session
            uplinks = {
                f"spine{j}": UPLINK_PORT_BASE + j for j in range(n_spines)
            }
            self.leaves.append(
                Leaf(f"leaf{i}", i, switch, session, face, uplinks)
            )
        self.fib = fib

        self.spines: list[Spine] = []
        for j in range(n_spines):
            switch = ESwitch.from_pipeline(spine_pipeline(fib))
            session = ControllerSession(
                switch,
                controller=None,  # proactive-only: nothing to punt
                channel=channel_for("spine", f"spine{j}", j),
                fail_mode=fail_mode,
                **session_kwargs,
            )
            downlinks = {
                f"leaf{i}": DOWNLINK_PORT_BASE + i for i in range(n_leaves)
            }
            self.spines.append(
                Spine(f"spine{j}", j, switch, session, downlinks)
            )

        self.port_map = {
            (leaf.name, spine.name): (
                leaf.uplink_ports[spine.name],
                spine.downlink_ports[leaf.name],
            )
            for leaf in self.leaves
            for spine in self.spines
        }

    @staticmethod
    def _default_channel(role: str, name: str, index: int) -> LossyChannel:
        if role == "leaf":
            return LossyChannel(loss=0.01, delay_s=1e-3, jitter_s=5e-4,
                                seed=1000 + index)
        return LossyChannel(loss=0.0, delay_s=1e-3, seed=2000 + index)

    # -- naming ------------------------------------------------------------

    def leaf(self, name: str) -> Leaf:
        for leaf in self.leaves:
            if leaf.name == name:
                return leaf
        raise KeyError(name)

    def spine(self, name: str) -> Spine:
        for spine in self.spines:
            if spine.name == name:
                return spine
        raise KeyError(name)

    def session_of(self, name: str) -> ControllerSession:
        try:
            return self.leaf(name).session
        except KeyError:
            return self.spine(name).session

    def leaf_of(self, ce: int, user: int = 0) -> Leaf:
        """A subscriber's home leaf: CEs spread round-robin over leaves."""
        return self.leaves[ce % self.n_leaves]

    # -- the data plane ----------------------------------------------------

    def inject(self, leaf: "Leaf | str", pkts) -> BurstOutcome:
        """One access-side burst into a leaf, carried through a spine.

        A packet is **served** when the leaf forwarded it upstream and
        the ECMP-chosen spine forwarded it on; anything the leaf punted,
        dropped, or fail-secure-killed — and anything a spine dropped —
        is not. Spine sub-bursts keep packet order per spine (the spray
        is flow-sticky, so per-flow order is preserved end to end).
        """
        if isinstance(leaf, str):
            leaf = self.leaf(leaf)
        outcome = BurstOutcome(injected=len(pkts))
        verdicts = leaf.session.process_burst(pkts)
        upstream: list[list] = [[] for _ in self.spines]
        for pkt, verdict in zip(pkts, verdicts):
            if verdict.to_controller and not verdict.forwarded:
                outcome.punted += 1
                if verdict.dropped:  # fail-secure killed the punt
                    outcome.dropped += 1
                continue
            if not verdict.forwarded:
                outcome.dropped += 1
                continue
            spine_idx = shard_of(pkt.data, self.n_spines, seed=self.ecmp_seed)
            hop = pkt.copy()
            hop.in_port = self.spines[spine_idx].downlink_ports[leaf.name]
            upstream[spine_idx].append(hop)
        for spine, sub in zip(self.spines, upstream):
            if not sub:
                continue
            for verdict in spine.session.process_burst(sub):
                if verdict.forwarded:
                    outcome.served += 1
                else:
                    outcome.dropped += 1
        return outcome

    # -- the control plane -------------------------------------------------

    def advance(self, dt: float) -> None:
        """Move every session's virtual clock forward together."""
        for leaf in self.leaves:
            leaf.session.advance(dt)
        for spine in self.spines:
            spine.session.advance(dt)
        self.now += dt

    def health(self) -> dict:
        """Per-switch session + engine health, keyed by switch name."""
        out = {}
        for node in (*self.leaves, *self.spines):
            entry = {"session": node.session.health().as_dict()}
            engine_health = getattr(node.switch, "health", None)
            if engine_health is not None:
                entry["engine"] = engine_health().as_dict()
            out[node.name] = entry
        return out

    def close(self) -> None:
        for node in (*self.leaves, *self.spines):
            close = getattr(node.switch, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "Fabric":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        up = sum(1 for l in self.leaves if l.session.connected)
        return (
            f"Fabric(leaves={up}/{self.n_leaves} up, "
            f"spines={self.n_spines}, subscribers="
            f"{self.n_ce * self.users_per_ce})"
        )
