"""Flow tables: priority-ordered entry lists with lookup and modification.

Lookup walks entries in decreasing priority, the direct-datapath semantics
of Section 2.1; the fast switches (:mod:`repro.core`, :mod:`repro.ovs`)
build their own specialized structures from the same entries. The table
records *which entries were probed* during a lookup — the megaflow
wildcard computation in :mod:`repro.ovs.megaflow` needs the non-matching
higher-priority entries too ("those that caused a match as well as those
higher priority ones that did not", Section 2.2).
"""

from __future__ import annotations

import bisect
import enum
from typing import Callable, Iterator, Mapping

from repro.openflow.flow_entry import FlowEntry
from repro.openflow.match import Match
from repro.packet.parser import ParsedPacket


def _sort_key(entry: "FlowEntry") -> int:
    """Priority-descending sort/bisect key for the entry list."""
    return -entry.priority


def entry_features(entry: FlowEntry) -> tuple:
    """The value-free fingerprint of one entry: ``(priority, match shape,
    set-field names, action parse depth)``.

    Two entries with equal features are interchangeable for template
    selection (which masks on which fields, at what priority) and parser
    planning (which fields actions rewrite, how deep parsing must go) —
    only their matched *values* differ. :meth:`FlowTable.feature_counts`
    aggregates these so per-flow-mod replanning reads a handful of
    distinct shapes instead of rescanning a million entries.
    """
    from repro.openflow.actions import DecTtl, SetField
    from repro.openflow.groups import GroupAction

    sig = tuple((n, m) for n, (_v, m) in entry.match.items())
    names: set[str] = set()
    depth = 2
    for action in entry.apply_actions + entry.write_actions:
        if isinstance(action, SetField):
            names.add(action.field)
        elif isinstance(action, DecTtl):
            depth = max(depth, 3)
        elif isinstance(action, GroupAction):
            # SELECT bucket choice hashes the 5-tuple: full parse.
            depth = 4
    return (entry.priority, sig, tuple(sorted(names)), depth)


class TableMissPolicy(enum.Enum):
    """What happens to packets missing every entry (switch configuration)."""

    DROP = "drop"
    CONTROLLER = "controller"


class FlowTable:
    """A single pipeline stage: a priority-sorted list of flow entries."""

    def __init__(
        self,
        table_id: int = 0,
        name: str = "",
        miss_policy: TableMissPolicy = TableMissPolicy.DROP,
        max_entries: "int | None" = None,
    ):
        if table_id < 0:
            raise ValueError(f"invalid table id {table_id}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.table_id = table_id
        self.name = name or f"table{table_id}"
        self.miss_policy = miss_policy
        #: advertised capacity (OpenFlow table-features ``max_entries``);
        #: None = unbounded. The table itself stays permissive — admission
        #: control (``ESwitch.admit_flow_mods``) is what surfaces an
        #: over-capacity flow-mod as ``OFPFMFC_TABLE_FULL``.
        self.max_entries = max_entries
        self._entries: list[FlowEntry] = []  # kept sorted: priority desc, stable
        self.version = 0  # bumped on every modification (for cache invalidation)
        # Lazy rule indexes. ``add``/strict ``remove``/``has_rule``/
        # ``find`` would otherwise scan the whole list per call — an O(n)
        # wall that turns million-entry churn into a benchmark of this
        # list instead of the datapath updates. ``_rules`` maps
        # ``(priority, match) -> entry`` (unique: ``add`` replaces
        # same-rule entries); ``_by_match`` maps ``match -> entries`` in
        # priority-descending order (``find``'s duplicate-shadowing
        # answer is the head). Both are only trusted while
        # ``_rules_version == version``; any out-of-band mutation (the
        # flow-mod rollback path assigns ``_entries`` wholesale) bumps
        # ``version`` and so invalidates them.
        self._rules: "dict[tuple, FlowEntry] | None" = None
        self._by_match: "dict[Match, list[FlowEntry]] | None" = None
        self._rules_version = -1
        # Lazy multiset of :func:`entry_features` fingerprints, same
        # staleness contract. Template re-selection and parser planning
        # read this instead of walking the entries.
        self._feats: "dict[tuple, int] | None" = None
        self._feats_version = -1

    # -- modification ---------------------------------------------------------

    def _indexes(self) -> "tuple[dict, dict]":
        if self._rules is None or self._rules_version != self.version:
            rules: dict = {}
            by_match: dict = {}
            for e in self._entries:  # priority-desc ⇒ per-match lists too
                rules[(e.priority, e.match)] = e
                by_match.setdefault(e.match, []).append(e)
            self._rules, self._by_match = rules, by_match
            self._rules_version = self.version
        return self._rules, self._by_match

    def feature_counts(self) -> "dict[tuple, int]":
        """Multiset of :func:`entry_features` fingerprints, lazily built
        and maintained incrementally by ``add``/strict ``remove``.

        The distinct-key set is tiny (one key per match *shape*, not per
        entry), which is what makes per-update template re-selection and
        parser re-planning O(shapes) instead of O(entries).
        """
        if self._feats is None or self._feats_version != self.version:
            feats: "dict[tuple, int]" = {}
            for e in self._entries:
                f = entry_features(e)
                feats[f] = feats.get(f, 0) + 1
            self._feats = feats
            self._feats_version = self.version
        return self._feats

    def _feats_update(
        self,
        removed: "FlowEntry | None",
        added: "FlowEntry | None",
        fresh: bool,
    ) -> None:
        """Apply one mutation's delta (call after the version bump)."""
        if not fresh or self._feats is None:
            return
        feats = self._feats
        if removed is not None:
            f = entry_features(removed)
            n = feats.get(f, 0) - 1
            if n <= 0:
                feats.pop(f, None)
            else:
                feats[f] = n
        if added is not None:
            f = entry_features(added)
            feats[f] = feats.get(f, 0) + 1
        self._feats_version = self.version

    def add(self, entry: FlowEntry) -> FlowEntry:
        """Insert an entry; replaces an existing entry with the same rule."""
        key = (entry.priority, entry.match)
        for _ in range(2):
            rules, by_match = self._indexes()
            existing = rules.get(key)
            if existing is None:
                # Stable insert after all entries with priority >=
                # entry.priority (insort_right on the descending key
                # lands exactly there).
                bisect.insort_right(self._entries, entry, key=_sort_key)
                bisect.insort_right(
                    by_match.setdefault(entry.match, []), entry, key=_sort_key
                )
            else:
                try:
                    # list.index compares by identity first — a C scan.
                    pos = self._entries.index(existing)
                except ValueError:
                    # Entry objects were swapped wholesale (snapshot
                    # restore keeps rule keys but not identities, and may
                    # skip the version bump): rebuild the index and retry
                    # — a fresh index can't be stale.
                    self._rules = None
                    continue
                self._entries[pos] = entry
                lst = by_match[entry.match]
                lst[lst.index(existing)] = entry
            rules[key] = entry
            feats_fresh = self._feats_version == self.version
            self.version += 1
            self._rules_version = self.version
            # Replacement may change the actions even though the rule key
            # is equal, so the old entry's fingerprint must come out.
            self._feats_update(existing, entry, feats_fresh)
            return entry
        raise AssertionError("rule index stale after rebuild")

    def add_bulk(self, entries: "list[FlowEntry]") -> int:
        """Insert many entries in one stable sort instead of n priority scans.

        Semantically identical to calling :meth:`add` per entry in order —
        same-rule duplicates replace in place (last wins) and ties within
        a priority keep their relative order (existing entries first, the
        sort is stable). :meth:`add` is O(n) per call, an O(n²) wall at
        the million-entry tables the scale bench loads; this is one
        O(n log n) pass keyed on the (hashable) rule identity.
        """
        if not entries:
            return 0
        merged: "list[FlowEntry]" = list(self._entries)
        slot: dict = {
            (entry.priority, entry.match): i for i, entry in enumerate(merged)
        }
        for entry in entries:
            key = (entry.priority, entry.match)
            at = slot.get(key)
            if at is None:
                slot[key] = len(merged)
                merged.append(entry)
            else:
                merged[at] = entry
        merged.sort(key=_sort_key)  # stable: ties keep order
        self._entries = merged
        self._rules = self._by_match = self._feats = None
        self.version += 1
        return len(entries)

    def remove(self, match: Match, priority: "int | None" = None) -> int:
        """Remove entries with the given match (and priority, if given)."""
        if priority is not None:
            # Strict delete targets exactly one rule — ``add`` keeps
            # (priority, match) unique — so the index answers in O(1)
            # and list.remove's identity fast path does the shift in C.
            key = (priority, match)
            for _ in range(2):
                rules, by_match = self._indexes()
                entry = rules.get(key)
                if entry is None:
                    return 0
                try:
                    self._entries.remove(entry)
                except ValueError:
                    self._rules = None  # swapped out-of-band: see add()
                    continue
                del rules[key]
                lst = by_match[entry.match]
                lst.remove(entry)
                if not lst:
                    del by_match[entry.match]
                feats_fresh = self._feats_version == self.version
                self.version += 1
                self._rules_version = self.version
                self._feats_update(entry, None, feats_fresh)
                return 1
            raise AssertionError("rule index stale after rebuild")
        before = len(self._entries)
        self._entries = [e for e in self._entries if e.match != match]
        removed = before - len(self._entries)
        if removed:
            self._rules = self._by_match = self._feats = None
            self.version += 1
        return removed

    def find(self, match: Match) -> "FlowEntry | None":
        """The highest-priority entry whose match *equals* ``match``.

        Per-match lists are priority-sorted, so the head is the one a
        lookup would prefer among same-match duplicates.
        """
        _rules, by_match = self._indexes()
        lst = by_match.get(match)
        return lst[0] if lst else None

    def has_rule(self, match: Match, priority: int) -> bool:
        """True when an entry with exactly this rule (match + priority)
        exists — the ADD-replaces case capacity checks must not count."""
        return (priority, match) in self._indexes()[0]

    @property
    def full(self) -> bool:
        """True when the table is at (or past) its advertised capacity."""
        return self.max_entries is not None and len(self._entries) >= self.max_entries

    def remove_if(self, predicate: Callable[[FlowEntry], bool]) -> int:
        before = len(self._entries)
        self._entries = [e for e in self._entries if not predicate(e)]
        removed = before - len(self._entries)
        if removed:
            self._rules = self._by_match = self._feats = None
            self.version += 1
        return removed

    def clear(self) -> None:
        if self._entries:
            self.version += 1
        self._entries.clear()
        self._rules = self._by_match = self._feats = None

    # -- lookup -----------------------------------------------------------------

    def lookup(
        self,
        view: ParsedPacket,
        probed: "list[FlowEntry] | None" = None,
    ) -> "FlowEntry | None":
        """Highest-priority matching entry, or None (table miss).

        If ``probed`` is given, every entry examined — including the ones
        that failed to match — is appended to it.
        """
        for entry in self._entries:
            if probed is not None:
                probed.append(entry)
            if entry.match.matches(view):
                return entry
        return None

    def lookup_key(
        self,
        key: Mapping[str, "int | None"],
        probed: "list[FlowEntry] | None" = None,
    ) -> "FlowEntry | None":
        """Like :meth:`lookup` but over an extracted flow key."""
        for entry in self._entries:
            if probed is not None:
                probed.append(entry)
            if entry.match.matches_key(key):
                return entry
        return None

    # -- inspection ---------------------------------------------------------------

    @property
    def entries(self) -> tuple[FlowEntry, ...]:
        """Entries in decreasing order of priority (insertion-stable)."""
        return tuple(self._entries)

    def matched_fields(self) -> tuple[str, ...]:
        """Union of fields any entry matches on, sorted (O(shapes))."""
        names: set[str] = set()
        for (_prio, sig, _set_names, _depth) in self.feature_counts():
            names.update(n for n, _m in sig)
        return tuple(sorted(names))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[FlowEntry]:
        return iter(self._entries)

    def __repr__(self) -> str:
        return f"FlowTable(id={self.table_id}, entries={len(self._entries)})"
