"""Tests for the Section 4.4 analytic model — the paper's exact numbers."""

import pytest

from repro.dpdk.l2fwd import l2fwd_rate_pps
from repro.simcpu.model import (
    AnalyticModel,
    StageCost,
    gateway_model,
    gateway_paper_bounds,
)
from repro.simcpu.platform import XEON_E5_2620


class TestGatewayModel:
    def test_fig20_cycle_counts(self):
        """The paper: 166 + 3*Lx -> 178 / 202 / 253 cycles."""
        model = gateway_model()
        assert model.cycles(1) == pytest.approx(178.0)
        assert model.cycles(2) == pytest.approx(202.0)
        assert model.cycles(3) == pytest.approx(253.0)

    def test_paper_pps_estimates(self):
        """11.2 Mpps optimistic, 9.9 Mpps mid, 7.9 Mpps pessimistic."""
        bounds = gateway_paper_bounds()
        assert bounds["pps_ub"] == pytest.approx(11.2e6, rel=0.01)
        assert bounds["pps_mid"] == pytest.approx(9.9e6, rel=0.01)
        assert bounds["pps_lb"] == pytest.approx(7.9e6, rel=0.01)

    def test_bounds_ordering(self):
        lb, ub = gateway_model().bounds()
        assert lb < ub

    def test_rundown_shape(self):
        rows = gateway_model().rundown()
        names = [name for name, _c, _comment in rows]
        assert names == [
            "PKT_IN",
            "parser template",
            "hash template 1",
            "hash template 2",
            "LPM template",
            "action templates",
            "PKT_OUT",
        ]
        # Fig. 20 notation: Lx markers on the variable stages.
        by_name = {name: cycles for name, cycles, _ in rows}
        assert by_name["hash template 2"] == "8 + Lx"
        assert by_name["LPM template"] == "13 + 2*Lx"


class TestComposition:
    def test_add_models(self):
        a = AnalyticModel([StageCost("x", 10, 1)])
        b = AnalyticModel([StageCost("y", 20, 0)])
        combined = a + b
        assert combined.fixed_cycles == 30
        assert combined.mem_accesses == 1

    def test_add_requires_same_platform(self):
        from repro.simcpu.platform import ATOM_C2750

        a = AnalyticModel([StageCost("x", 1)], platform=XEON_E5_2620)
        b = AnalyticModel([StageCost("y", 1)], platform=ATOM_C2750)
        with pytest.raises(ValueError):
            a + b

    def test_cycles_requires_positive(self):
        with pytest.raises(ValueError):
            XEON_E5_2620.pps(0)


class TestPlatformBenchmark:
    def test_l2fwd_ceiling(self):
        """Section 4.2: 15.7 Mpps port-forward ceiling."""
        assert l2fwd_rate_pps() == pytest.approx(15.7e6, rel=0.005)
