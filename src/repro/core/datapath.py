"""The compiled datapath: trampoline, driver loop, and parser dispatch.

After per-table specialization, linking combines the tables into a running
datapath (Section 3.3):

* within-table jumps are already Python control flow inside the generated
  functions;
* ``goto_table`` jumps go **via a trampoline** — here a mutable dict from
  table id to compiled table — so that a table rebuilt side-by-side can be
  inserted "by atomically redirecting all referring goto_table jumps to the
  address of the new code" (Section 3.4): one dict-slot assignment.

The driver also embodies the parser templates: pipelines that match only
L2 fields never parse L3/L4 headers ("for pure L2 MAC forwarding it is
completely superfluous to parse L3 and L4 header fields", Section 3.1),
and the cost model charges only the parser layers actually composed.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.codegen import CompiledTable
from repro.core.outcome import Outcome
from repro.openflow.actions import Action, Output
from repro.openflow.fields import field_by_name, max_layer
from repro.openflow.pipeline import MAX_TABLE_HOPS, Pipeline, PipelineError, Verdict
from repro.packet import parser as pp
from repro.packet.packet import Packet
from repro.simcpu.costs import CostBook, DEFAULT_COSTS
from repro.simcpu.recorder import Meter, NULL_METER


def required_layer(pipeline: Pipeline) -> int:
    """Deepest protocol layer the pipeline's matches *and actions* need.

    Reads each table's :meth:`~repro.openflow.flow_table.FlowTable.
    feature_counts` fingerprint multiset — one key per distinct entry
    *shape* — instead of rescanning every entry's actions. Flow-mod
    handling calls this once per update, so at million-entry tables the
    O(entries) walk was the update bottleneck; this is O(shapes).
    """
    deepest = 2
    names: set[str] = set()
    for table in pipeline:
        for (_prio, sig, set_names, depth) in table.feature_counts():
            if depth > deepest:
                deepest = depth
            names.update(n for n, _m in sig)
            names.update(set_names)
    if names:
        deepest = max(deepest, max_layer(names))
    return deepest


def needs_etype(pipeline: Pipeline) -> bool:
    return "eth_type" in pipeline.matched_fields()


_PARSERS = {2: pp.parse_l2, 3: pp.parse_l3, 4: pp.parse}


class CompiledDatapath:
    """Executes compiled tables over packets; the ESWITCH fast path.

    Two execution engines share the same compiled tables:

    * the **trampoline** — goto_table resolved through a mutable dict, so
      any single table can be swapped atomically (always correct, always
      available);
    * the **fused driver** (:mod:`repro.core.fuse`) — the whole pipeline
      linked into one code object, valid for one value of
      :attr:`generation`.

    ``generation`` is the invalidation contract: every ``install``/
    ``uninstall``/``set_parser_layer`` bumps it (callers that mutate a
    compiled table's namespace in place must call :meth:`bump_generation`
    themselves — :class:`~repro.core.eswitch.ESwitch` does). ``process``/
    ``process_burst`` run the fused driver while it matches the current
    generation and lazily re-fuse on the first packet after a change —
    the compile happens off the update critical path, with the trampoline
    serving packets in the window and for shapes the fuser rejects.
    """

    def __init__(
        self,
        first_table: int,
        parser_layer: int = 4,
        use_etype: bool = True,
        costs: CostBook = DEFAULT_COSTS,
        enable_fusion: bool = True,
        fuse_source_budget: "int | None" = None,
    ):
        if parser_layer not in _PARSERS:
            raise ValueError(f"parser layer must be 2, 3, or 4, not {parser_layer}")
        self.trampoline: dict[int, CompiledTable] = {}
        self.first_table = first_table
        self.parser_layer = parser_layer
        self.use_etype = use_etype
        self.costs = costs
        self.enable_fusion = enable_fusion
        #: cumulative chars of table bodies the fuser may textually inline;
        #: tables past it are linked by closure call (None = unbounded).
        self.fuse_source_budget = fuse_source_budget
        self.generation = 0
        self._fused = None
        self._fuse_failed_gen = -1
        #: fusion attempts that degraded to the trampoline (fail-static
        #: accounting: a fuse failure is a health event, never a crash).
        self.fuse_failures = 0
        self.last_fuse_error = ""
        self._extract_etype = field_by_name("eth_type").extract
        self.set_parser_layer(parser_layer)

    def set_parser_layer(self, parser_layer: int) -> None:
        """Re-plan the parser templates (updates can deepen match fields)."""
        if parser_layer not in _PARSERS:
            raise ValueError(f"parser layer must be 2, 3, or 4, not {parser_layer}")
        self.parser_layer = parser_layer
        costs = self.costs
        self._parser_cost = costs.parser_l2
        if parser_layer >= 3:
            self._parser_cost += costs.parser_l3
        if parser_layer >= 4:
            self._parser_cost += costs.parser_l4
        self.generation += 1

    # -- linking ------------------------------------------------------------

    def bump_generation(self) -> None:
        """Invalidate the fused driver after an in-place table mutation."""
        self.generation += 1

    def install(self, compiled: CompiledTable) -> None:
        """Atomically (re)link one table into the trampoline."""
        self.trampoline[compiled.table_id] = compiled
        self.generation += 1

    def uninstall(self, table_id: int) -> None:
        self.trampoline.pop(table_id, None)
        self.generation += 1

    def table(self, table_id: int) -> CompiledTable:
        return self.trampoline[table_id]

    # -- fusion ------------------------------------------------------------

    @property
    def fused(self):
        """The current fused driver, or None (inspection only)."""
        return self._fused

    def ensure_fused(self):
        """Force the lazy re-fuse now; returns the driver or None.

        Normally fusion runs on the first packet after a generation bump
        (off the update critical path). Replica orchestration wants the
        opposite trade: the sharded engine's epoch barrier calls this so
        a worker only acknowledges an update after its new fused
        datapath is actually standing (see :meth:`ESwitch.warm`).
        """
        return self._fused_fresh()

    def _fused_fresh(self):
        """The fused driver if valid for this generation, fusing lazily."""
        if not self.enable_fusion:
            return None
        fused = self._fused
        generation = self.generation
        if fused is not None and fused.generation == generation:
            return fused
        if self._fuse_failed_gen == generation:
            return None
        from repro.core.fuse import fuse_datapath

        try:
            fused = fuse_datapath(self)
        except Exception as exc:
            # Containment: *any* fusion failure — an unfusable shape
            # (FuseError) or an unexpected codegen bug — degrades to the
            # trampoline, which is always correct. The failure is recorded
            # for health reporting and retried only on the next generation.
            self._fused = None
            self._fuse_failed_gen = generation
            self.fuse_failures += 1
            self.last_fuse_error = f"{type(exc).__name__}: {exc}"
            return None
        self._fused = fused
        return fused

    def force_fuse_failure(self, reason: str = "forced degradation") -> None:
        """Degrade this generation to the trampoline, as a real fusion
        failure would. Drops any standing fused driver and pins the
        *current* generation as failed — the next update (generation
        bump) retries fusion normally. The differential fuzzer uses this
        to hold a backend in the middle rung of the fallback chain;
        production code paths reach the same state through
        :meth:`_fused_fresh`'s containment."""
        self._fused = None
        self._fuse_failed_gen = self.generation
        self.fuse_failures += 1
        self.last_fuse_error = reason

    # -- the fast path -----------------------------------------------------------

    def process(self, pkt: Packet, meter: Meter = NULL_METER) -> Verdict:
        fused = self._fused_fresh()
        if fused is not None:
            if meter is NULL_METER:
                return fused.process_null(pkt)
            return fused.process(pkt, meter)
        costs = self.costs
        meter.charge(costs.pkt_in + costs.es_dispatch + self._parser_cost)
        return self._forward(pkt, meter, _PARSERS[self.parser_layer], self.trampoline)

    def process_burst(
        self,
        pkts: "Sequence[Packet]",
        meter: Meter = NULL_METER,
        on_verdict=None,
    ) -> list[Verdict]:
        """Run one IO burst through the datapath (Section 4.2's batching).

        The per-burst framework cost (PMD poll, doorbells, descriptor ring
        maintenance) is charged **once**, before the first packet; each
        packet then pays the scalar per-packet cost minus the
        reference-burst amortization already baked into ``pkt_in`` — a
        burst of ``costs.reference_burst`` packets costs exactly what that
        many scalar :meth:`process` calls cost.

        Parser dispatch, the trampoline, and the cost-book loads are
        hoisted out of the per-packet loop. Per-packet meter windows
        (``begin_packet``/``end_packet``) are driven here when the meter
        supports them, so the per-burst cost lands in the burst's first
        window — the packet that really pays for the poll.

        ``on_verdict(pkt, verdict)``, if given, runs after each packet
        (packet-in delivery, deferred rebuild flushes); a truthy return
        signals that datapath state may have changed and the hoisted
        dispatch is re-read.

        While a fused driver is fresh the whole burst runs inside it; a
        truthy ``on_verdict`` hands the rest of the burst back to the
        trampoline (which re-reads the live datapath), and the next burst
        re-fuses lazily.
        """
        if not pkts:
            return []
        fused = self._fused_fresh()
        if fused is not None:
            if meter is NULL_METER:
                verdicts, resume = fused.burst_null(pkts, on_verdict)
            else:
                verdicts, resume = fused.burst(pkts, meter, on_verdict)
            if resume < 0:
                return verdicts
            return self._trampoline_burst(
                pkts, meter, on_verdict, verdicts=verdicts, start=resume,
                charge_io=False,
            )
        return self._trampoline_burst(pkts, meter, on_verdict)

    def _trampoline_burst(
        self,
        pkts: "Sequence[Packet]",
        meter: Meter,
        on_verdict,
        verdicts: "list[Verdict] | None" = None,
        start: int = 0,
        charge_io: bool = True,
    ) -> list[Verdict]:
        """The dict-dispatch burst loop (also the fused driver's resume
        path: ``start > 0`` picks up mid-burst with the per-burst IO cost
        already charged)."""
        verdicts = [] if verdicts is None else verdicts
        costs = self.costs
        begin = getattr(meter, "begin_packet", None)
        end = getattr(meter, "end_packet", None)
        if charge_io:
            meter.charge(costs.io_burst_cost)
        parse = _PARSERS[self.parser_layer]
        trampoline = self.trampoline
        per_pkt = (
            costs.pkt_in + costs.es_dispatch + self._parser_cost
            - costs.io_burst_share
        )
        for pkt in pkts[start:] if start else pkts:
            if begin is not None:
                begin()
            meter.charge(per_pkt)
            verdict = self._forward(pkt, meter, parse, trampoline)
            if end is not None:
                end()
            verdicts.append(verdict)
            if on_verdict is not None and on_verdict(pkt, verdict):
                # Control work ran between packets: re-hoist the dispatch.
                parse = _PARSERS[self.parser_layer]
                trampoline = self.trampoline
                per_pkt = (
                    costs.pkt_in + costs.es_dispatch + self._parser_cost
                    - costs.io_burst_share
                )
        return verdicts

    def _forward(self, pkt: Packet, meter: Meter, parse, trampoline) -> Verdict:
        costs = self.costs
        view = parse(pkt)
        data = pkt.data
        l3, l4, proto = view.l3, view.l4, view.proto
        nxt = view.l4_proto
        etype = (self._extract_etype(view) or 0) if self.use_etype else 0

        verdict = Verdict()
        write_set: list[Action] = []
        tid = self.first_table
        did_work = False
        hops = 0
        while True:
            hops += 1
            if hops > MAX_TABLE_HOPS:
                raise PipelineError("compiled pipeline loop detected")
            compiled = trampoline.get(tid)
            if compiled is None:
                raise PipelineError(f"goto_table to unlinked table {tid}")
            out: Outcome = compiled.fn(data, pkt, l3, l4, proto, etype, nxt, meter)
            verdict.path.append((tid, out.entry))

            if out.is_miss:
                verdict.table_miss = True
                if out.to_controller:
                    verdict.to_controller = True
                else:
                    verdict.dropped = True
                meter.charge(costs.table_miss)
                return verdict

            if out.entry is not None:
                out.entry.counters.record(len(data))
            if out.meter is not None and not out.meter.allow():
                verdict.dropped = True
                return verdict
            if out.apply_actions:
                did_work = True
                for action in out.apply_actions:
                    action.apply(view, verdict)
                    if verdict.reparse_needed:
                        view = parse(pkt)
                        data = pkt.data
                        l3, l4, proto = view.l3, view.l4, view.proto
                        nxt = view.l4_proto
                        if self.use_etype:
                            etype = self._extract_etype(view) or 0
                        verdict.reparse_needed = False
            if out.clear_actions:
                write_set.clear()
            if out.write_actions:
                write_set.extend(out.write_actions)
            if out.metadata_write is not None:
                value, mask = out.metadata_write
                pkt.metadata = (pkt.metadata & ~mask) | (value & mask)
            if verdict.dropped:
                break
            if out.goto is None:
                break
            meter.charge(costs.goto_trampoline)
            tid = out.goto

        if write_set and not verdict.dropped:
            did_work = True
            ordered = [a for a in write_set if not isinstance(a, Output)] + [
                a for a in write_set if isinstance(a, Output)
            ]
            for action in ordered:
                action.apply(view, verdict)
                if verdict.reparse_needed:
                    view = parse(pkt)
                    verdict.reparse_needed = False

        if did_work:
            meter.charge(costs.action_set)
        if verdict.forwarded:
            meter.charge(costs.pkt_out)
        return verdict
