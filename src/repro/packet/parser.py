"""The reference packet parser.

Mirrors the paper's parser templates (Section 3.1): parsing is incremental
per layer, a protocol bitmask (the paper keeps it in ``r15``) marks which
headers are present, and each layer's start offset is recorded (``r12``,
``r13``, ``r14`` in the paper's assembly). Malformed layers simply clear
the corresponding protocol bits — matching on absent headers then fails,
as in a real switch.

:func:`parse` performs the combined L2–L4 parse (the paper's prototype
"defaults to a combined L2–L4 packet parser"); :func:`parse_l2` and
:func:`parse_l3` stop early, modeling the per-layer parser templates.
"""

from __future__ import annotations

from repro.packet import headers as hdr
from repro.packet.packet import Packet

# Protocol bitmask bits (the paper's r15 register).
PROTO_ETH = 1 << 0
PROTO_VLAN = 1 << 1
PROTO_IPV4 = 1 << 2
PROTO_IPV6 = 1 << 3
PROTO_ARP = 1 << 4
PROTO_TCP = 1 << 5
PROTO_UDP = 1 << 6
PROTO_ICMP = 1 << 7
PROTO_SCTP = 1 << 8
PROTO_MPLS = 1 << 9

PROTO_ICMP6 = 1 << 10

PROTO_NAMES = {
    PROTO_ETH: "eth",
    PROTO_VLAN: "vlan",
    PROTO_IPV4: "ipv4",
    PROTO_IPV6: "ipv6",
    PROTO_ARP: "arp",
    PROTO_TCP: "tcp",
    PROTO_UDP: "udp",
    PROTO_ICMP: "icmp",
    PROTO_SCTP: "sctp",
    PROTO_MPLS: "mpls",
    PROTO_ICMP6: "icmpv6",
}


class ParsedPacket:
    """Layer offsets + protocol bitmask for one packet.

    Attributes mirror the registers of the paper's parser templates:

    * ``proto`` — protocol bitmask (r15);
    * ``l2`` — offset of the Ethernet header (r12), always 0 here;
    * ``l3`` — offset of the L3 (IPv4/ARP) header (r13), or -1;
    * ``l4`` — offset of the L4 (TCP/UDP/ICMP) header (r14), or -1.

    ``parsed_layers`` records how deep parsing went (2, 3, or 4), so the
    performance model can charge only the parser templates actually
    emitted for the pipeline.
    """

    __slots__ = ("pkt", "proto", "l2", "l3", "l4", "l4_proto", "parsed_layers", "eth_type")

    def __init__(self, pkt: Packet):
        self.pkt = pkt
        self.proto = 0
        self.l2 = 0
        self.l3 = -1
        self.l4 = -1
        #: the resolved IP protocol / final IPv6 next-header, or -1.
        self.l4_proto = -1
        self.parsed_layers = 0
        #: the effective (post-VLAN) ethertype resolved by the L2 parser,
        #: 0 until parsed — exactly ``_x_eth_type(view) or 0``, cached so
        #: per-packet consumers skip the re-extraction walk.
        self.eth_type = 0

    def has(self, proto_bit: int) -> bool:
        return bool(self.proto & proto_bit)

    def __repr__(self) -> str:
        names = [name for bit, name in PROTO_NAMES.items() if self.proto & bit]
        return f"ParsedPacket(protos={'+'.join(names) or 'none'}, l3={self.l3}, l4={self.l4})"


def parse_l2(pkt: Packet) -> ParsedPacket:
    """L2 parser template: Ethernet (+ VLAN tags), stop before L3."""
    view = ParsedPacket(pkt)
    data = pkt.data
    if len(data) < hdr.ETH_HEADER_LEN:
        return view
    view.proto |= PROTO_ETH
    view.parsed_layers = 2
    offset = 12  # ethertype position
    ethertype = (data[offset] << 8) | data[offset + 1]
    offset += 2
    while ethertype == hdr.ETH_TYPE_VLAN:
        if len(data) < offset + hdr.VLAN_TAG_LEN:
            view.eth_type = ethertype
            return view
        view.proto |= PROTO_VLAN
        ethertype = (data[offset + 2] << 8) | data[offset + 3]
        offset += hdr.VLAN_TAG_LEN
    # Record where L3 *would* start plus the resolved ethertype so that the
    # L3 parser can compose this parser, as in the paper.
    view.eth_type = ethertype
    view.l3 = offset
    return view


def parse_l3(pkt: Packet) -> ParsedPacket:
    """L3 parser template: composes the L2 parser, parses IPv4/ARP."""
    view = parse_l2(pkt)
    if not view.proto & PROTO_ETH:
        return view
    view.parsed_layers = 3
    data = pkt.data
    ethertype = view.eth_type
    if ethertype == hdr.ETH_TYPE_IPV4:
        if len(data) < view.l3 + hdr.IPV4_MIN_HEADER_LEN or data[view.l3] >> 4 != 4:
            view.l3 = -1
            return view
        header_len = (data[view.l3] & 0xF) * 4
        if header_len < hdr.IPV4_MIN_HEADER_LEN or len(data) < view.l3 + header_len:
            view.l3 = -1
            return view
        view.proto |= PROTO_IPV4
        view.l4_proto = data[view.l3 + 9]
        view.l4 = view.l3 + header_len  # provisional; L4 parser validates
    elif ethertype == hdr.ETH_TYPE_IPV6:
        if len(data) < view.l3 + hdr.IPV6_HEADER_LEN or data[view.l3] >> 4 != 6:
            view.l3 = -1
            return view
        view.proto |= PROTO_IPV6
        view.l4_proto = data[view.l3 + 6]  # pre-extension-walk next header
        view.l4 = view.l3 + hdr.IPV6_HEADER_LEN  # provisional
    elif ethertype == hdr.ETH_TYPE_ARP:
        if len(data) >= view.l3 + hdr.ARP_IPV4_LEN:
            view.proto |= PROTO_ARP
        else:
            view.l3 = -1
    else:
        view.l3 = -1
    return view


def parse(pkt: Packet) -> ParsedPacket:
    """Combined L2–L4 parser (what the paper's prototype runs per packet)."""
    view = parse_l3(pkt)
    view.parsed_layers = 4
    data = pkt.data

    if view.proto & PROTO_IPV4:
        ip_offset = view.l3
        frag = ((data[ip_offset + 6] & 0x1F) << 8) | data[ip_offset + 7]
        if frag != 0:
            # Non-first fragments carry no L4 header.
            view.l4 = -1
            return view
        _finish_l4(view, data, view.l4, view.l4_proto)
        return view

    if view.proto & PROTO_IPV6:
        l4, nxt = _walk_ipv6_extensions(data, view.l3)
        view.l4_proto = nxt
        if l4 < 0:
            view.l4 = -1
            return view
        _finish_l4(view, data, l4, nxt)
        return view

    view.l4 = -1
    return view


def _walk_ipv6_extensions(data, l3: int) -> tuple[int, int]:
    """Follow the IPv6 next-header chain; returns (l4 offset, final proto).

    Offset -1 means no L4 header (truncated chain or a non-first fragment).
    """
    nxt = data[l3 + 6]
    offset = l3 + hdr.IPV6_HEADER_LEN
    hops = 0
    while nxt in hdr.IPV6_EXT_HEADERS:
        hops += 1
        if hops > 8 or len(data) < offset + 8:
            return -1, nxt
        if nxt == 44:  # fragment header: fixed 8 bytes
            frag_off = ((data[offset + 2] << 8) | data[offset + 3]) >> 3
            nxt_candidate = data[offset]
            if frag_off != 0:
                return -1, nxt_candidate
            nxt = nxt_candidate
            offset += 8
        elif nxt == 51:  # AH: length in 4-byte units, +2
            nxt = data[offset]
            offset += (data[offset + 1] + 2) * 4
        else:  # hop-by-hop / routing / destination options: 8-byte units, +1
            nxt = data[offset]
            offset += (data[offset + 1] + 1) * 8
    if len(data) < offset:
        return -1, nxt
    return offset, nxt


def _finish_l4(view: ParsedPacket, data, l4: int, proto: int) -> None:
    view.l4 = l4
    if proto == hdr.IP_PROTO_TCP and len(data) >= l4 + hdr.TCP_MIN_HEADER_LEN:
        view.proto |= PROTO_TCP
    elif proto == hdr.IP_PROTO_UDP and len(data) >= l4 + hdr.UDP_HEADER_LEN:
        view.proto |= PROTO_UDP
    elif proto == hdr.IP_PROTO_ICMP and view.proto & PROTO_IPV4 and len(
        data
    ) >= l4 + hdr.ICMP_HEADER_LEN:
        view.proto |= PROTO_ICMP
    elif proto == hdr.IP_PROTO_ICMPV6 and view.proto & PROTO_IPV6 and len(
        data
    ) >= l4 + hdr.ICMP_HEADER_LEN:
        view.proto |= PROTO_ICMP6
    else:
        view.l4 = -1
