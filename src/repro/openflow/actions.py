"""OpenFlow actions and action sets.

Every action type corresponds to one of the paper's *action templates*;
:class:`ActionSet` is the composite the templates are collapsed into, and
identical action sets are shared across flows (Section 3.1) — shared here
via interning in :func:`ActionSet.intern`.

Actions are immutable and hashable so action sets can be deduplicated.
Applying an action mutates the packet through the parsed view (set-field)
or appends to the verdict (output/controller).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.openflow.fields import field_by_name
from repro.packet import headers as hdr
from repro.packet.parser import ParsedPacket

if TYPE_CHECKING:
    from repro.openflow.pipeline import Verdict

FLOOD_PORT = 0xFFFFFFFB
CONTROLLER_PORT = 0xFFFFFFFD


@dataclass(frozen=True)
class Action:
    """Base class for all actions."""

    def apply(self, view: ParsedPacket, verdict: "Verdict") -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class Output(Action):
    """Forward the packet on a switch port."""

    port: int

    def apply(self, view: ParsedPacket, verdict: "Verdict") -> None:
        verdict.output_ports.append(self.port)


@dataclass(frozen=True)
class Flood(Action):
    """Forward on all ports except the ingress port."""

    def apply(self, view: ParsedPacket, verdict: "Verdict") -> None:
        verdict.output_ports.append(FLOOD_PORT)


@dataclass(frozen=True)
class Drop(Action):
    """Explicit drop (an empty action set drops implicitly too)."""

    def apply(self, view: ParsedPacket, verdict: "Verdict") -> None:
        verdict.dropped = True


@dataclass(frozen=True)
class Controller(Action):
    """Punt the packet to the controller (packet-in)."""

    def apply(self, view: ParsedPacket, verdict: "Verdict") -> None:
        verdict.to_controller = True
        verdict.output_ports.append(CONTROLLER_PORT)


@dataclass(frozen=True)
class SetField(Action):
    """Rewrite a header field (``field`` must have a registered writer)."""

    field: str
    value: int

    def __post_init__(self) -> None:
        fdef = field_by_name(self.field)
        if fdef.store is None:
            raise ValueError(f"set-field is not supported for {self.field}")
        if not 0 <= self.value <= fdef.max_value:
            raise ValueError(f"set-field value out of range for {self.field}: {self.value:#x}")
        # Resolve the field definition once; apply() runs per packet.
        object.__setattr__(self, "_store", fdef.store)
        object.__setattr__(self, "_proto_required", fdef.proto_required)

    def apply(self, view: ParsedPacket, verdict: "Verdict") -> None:
        required = self._proto_required
        if required and not view.proto & required:
            return  # header absent: no-op, as per the spec's error-free model
        self._store(view, self.value)


@dataclass(frozen=True)
class PushVlan(Action):
    """Push an 802.1Q tag carrying ``vid``/``pcp``."""

    vid: int = 0
    pcp: int = 0

    def apply(self, view: ParsedPacket, verdict: "Verdict") -> None:
        data = view.pkt.data
        inner_type = (data[12] << 8) | data[13]
        tci = ((self.pcp & 0x7) << 13) | (self.vid & 0xFFF)
        # Replace the 2-byte ethertype with [0x8100, TCI, inner ethertype].
        data[12:14] = bytes(
            (
                hdr.ETH_TYPE_VLAN >> 8,
                hdr.ETH_TYPE_VLAN & 0xFF,
                tci >> 8,
                tci & 0xFF,
                inner_type >> 8,
                inner_type & 0xFF,
            )
        )
        verdict.reparse_needed = True


@dataclass(frozen=True)
class PopVlan(Action):
    """Pop the outermost 802.1Q tag, if present."""

    def apply(self, view: ParsedPacket, verdict: "Verdict") -> None:
        data = view.pkt.data
        if (data[12] << 8) | data[13] != hdr.ETH_TYPE_VLAN:
            return
        del data[12:16]
        verdict.reparse_needed = True


@dataclass(frozen=True)
class DecTtl(Action):
    """Decrement the IPv4 TTL; drop when it reaches zero."""

    def apply(self, view: ParsedPacket, verdict: "Verdict") -> None:
        from repro.packet.parser import PROTO_IPV4

        if not view.proto & PROTO_IPV4:
            return
        o = view.l3
        ttl = view.pkt.data[o + 8]
        if ttl <= 1:
            verdict.dropped = True
            verdict.output_ports.clear()
            return
        view.pkt.data[o + 8] = ttl - 1


class ActionSet:
    """An ordered, immutable, interned group of actions.

    The paper collapses action templates into composite action sets and
    shares identical sets across flows; :meth:`intern` provides exactly
    that sharing, so two flow entries with the same actions reference the
    same compiled action code in the datapath.
    """

    __slots__ = ("actions", "_hash")
    _pool: dict[tuple[Action, ...], "ActionSet"] = {}

    def __init__(self, actions: Iterable[Action] = ()):
        self.actions: tuple[Action, ...] = tuple(actions)
        self._hash = hash(self.actions)

    @classmethod
    def intern(cls, actions: Iterable[Action]) -> "ActionSet":
        key = tuple(actions)
        pooled = cls._pool.get(key)
        if pooled is None:
            pooled = cls(key)
            cls._pool[key] = pooled
        return pooled

    @property
    def is_drop(self) -> bool:
        return not self.actions or any(isinstance(a, Drop) for a in self.actions)

    def apply(self, view: ParsedPacket, verdict: "Verdict") -> None:
        for action in self.actions:
            action.apply(view, verdict)

    def __iter__(self):
        return iter(self.actions)

    def __len__(self) -> int:
        return len(self.actions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ActionSet):
            return NotImplemented
        return self.actions == other.actions

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"ActionSet({list(self.actions)!r})"
