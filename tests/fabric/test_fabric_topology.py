"""The leaf–spine fabric: wiring, ECMP spray, serving, home leaves.

One shared controller, one session per switch, every leaf a full vPE
gateway, every spine a proactive RIB. Deterministic virtual time
throughout — no sleeps, everything replays under the seeds.
"""

import random

import pytest

from repro.controller.channels import LossyChannel
from repro.fabric import (
    DOWNLINK_PORT_BASE,
    Fabric,
    UPLINK_PORT_BASE,
    spine_pipeline,
)
from repro.net.addresses import int_to_ip
from repro.packet import PacketBuilder
from repro.usecases import gateway


def subscriber_pkt(ce, user, fib, rng):
    value, depth, _port = fib[rng.randrange(len(fib))]
    host_bits = 32 - depth
    dst = value | (rng.getrandbits(host_bits) if host_bits else 0)
    return (
        PacketBuilder(in_port=gateway.ACCESS_PORT)
        .eth(src="02:00:00:00:02:01", dst="02:00:00:00:02:02")
        .vlan(vid=gateway.ce_vlan(ce))
        .ipv4(
            src=int_to_ip(gateway.private_ip(ce, user)),
            dst=int_to_ip(dst),
        )
        .tcp(src_port=1024 + rng.randrange(60000), dst_port=443)
        .build()
    )


def reliable(role, name, index):
    return LossyChannel(loss=0.0, delay_s=1e-3, seed=7000 + index)


@pytest.fixture()
def fabric():
    with Fabric(
        n_leaves=4, n_spines=2, n_ce=8, users_per_ce=4, n_prefixes=64,
        channel_for=reliable,
    ) as fab:
        yield fab


class TestWiring:
    def test_full_bipartite_port_map(self, fabric):
        assert len(fabric.port_map) == 4 * 2
        for leaf in fabric.leaves:
            for spine in fabric.spines:
                up, down = fabric.port_map[(leaf.name, spine.name)]
                assert up == UPLINK_PORT_BASE + spine.index
                assert down == DOWNLINK_PORT_BASE + leaf.index
                assert leaf.uplink_ports[spine.name] == up
                assert spine.downlink_ports[leaf.name] == down

    def test_one_session_per_switch_one_controller(self, fabric):
        sessions = {
            id(node.session)
            for node in (*fabric.leaves, *fabric.spines)
        }
        assert len(sessions) == 6
        faces = {id(leaf.face.controller) for leaf in fabric.leaves}
        assert faces == {id(fabric.controller)}

    def test_independent_channels(self, fabric):
        channels = {
            id(node.session.channel)
            for node in (*fabric.leaves, *fabric.spines)
        }
        assert len(channels) == 6

    def test_home_leaf_is_deterministic_spread(self, fabric):
        homes = {
            fabric.leaf_of(ce).name for ce in range(fabric.n_ce)
        }
        assert homes == {leaf.name for leaf in fabric.leaves}
        assert fabric.leaf_of(3) is fabric.leaf_of(3, user=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            Fabric(n_leaves=0)
        with pytest.raises(ValueError):
            Fabric(n_leaves=4, n_ce=2)

    def test_lookup_by_name(self, fabric):
        assert fabric.leaf("leaf2").index == 2
        assert fabric.spine("spine1").index == 1
        assert fabric.session_of("spine0") is fabric.spines[0].session
        with pytest.raises(KeyError):
            fabric.leaf("leaf9")


class TestServing:
    def test_cold_burst_punts_then_warm_burst_serves(self, fabric):
        rng = random.Random(5)
        pkts = [subscriber_pkt(0, u, fabric.fib, rng) for u in range(4)]
        cold = fabric.inject("leaf0", pkts)
        assert cold.injected == 4
        assert cold.punted == 4
        assert cold.served == 0
        # Reactive admission: the punts installed NAT rules through
        # leaf0's own session; fresh flows from the same users now serve.
        warm = fabric.inject(
            "leaf0",
            [subscriber_pkt(0, u, fabric.fib, rng) for u in range(4)],
        )
        assert warm.served == warm.injected == 4
        assert warm.punted == 0

    def test_install_goes_via_the_punting_leaf_only(self, fabric):
        rng = random.Random(6)
        fabric.inject(
            "leaf1", [subscriber_pkt(1, u, fabric.fib, rng) for u in range(4)]
        )
        # leaf1 (home of CE 1) learned; leaf0 did not.
        assert fabric.leaf("leaf1").switch.pipeline.get_or_create(
            gateway.CE_TABLE_BASE + 1
        ).entries
        assert not fabric.leaf("leaf0").switch.pipeline.get_or_create(
            gateway.CE_TABLE_BASE + 1
        ).entries

    def test_ecmp_spray_is_flow_sticky_and_covers_spines(self, fabric):
        rng = random.Random(7)
        users = [(ce, u) for ce in (0, 4) for u in range(4)]
        pkts = [subscriber_pkt(ce, u, fabric.fib, rng) for ce, u in users]
        fabric.inject("leaf0", pkts)  # admit
        pkts2 = [subscriber_pkt(ce, u, fabric.fib, rng) for ce, u in users]
        counts = [0] * len(fabric.spines)
        for i, spine in enumerate(fabric.spines):
            orig = spine.session.process_burst

            def counted(burst, _orig=orig, _i=i):
                counts[_i] += len(burst)
                return _orig(burst)

            spine.session.process_burst = counted
        out = fabric.inject("leaf0", pkts2)
        assert out.served == len(pkts2)
        assert sum(counts) == len(pkts2)
        # The NAT rewrite is per-subscriber, so with 8 subscribers the
        # CRC-32 spray should land on both spines.
        assert all(c > 0 for c in counts)

    def test_spine_pipeline_routes_fib_and_drops_unknown(self, fabric):
        value, depth, port = fabric.fib[0]
        pkt = (
            PacketBuilder(in_port=DOWNLINK_PORT_BASE)
            .eth()
            .ipv4(src="10.0.0.1", dst=int_to_ip(value))
            .build()
        )
        verdict = fabric.spines[0].switch.process(pkt)
        assert verdict.forwarded
        assert port in verdict.output_ports

    def test_advance_moves_every_clock(self, fabric):
        fabric.advance(2.5)
        assert fabric.now == 2.5
        for node in (*fabric.leaves, *fabric.spines):
            assert node.session.now == pytest.approx(2.5)

    def test_health_covers_every_switch(self, fabric):
        h = fabric.health()
        assert set(h) == {
            n.name for n in (*fabric.leaves, *fabric.spines)
        }
        for entry in h.values():
            assert entry["session"]["state"] == "up"


class TestSharedFib:
    def test_leaves_and_spines_share_one_fib(self, fabric):
        # A leaf's RIB decision (next hop) must agree with the spine's,
        # or ECMP would blackhole: both are built from fabric.fib.
        pipeline = spine_pipeline(fabric.fib)
        assert pipeline.get_or_create(0).entries
