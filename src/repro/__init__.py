"""repro — a full reproduction of ESWITCH (SIGCOMM 2016).

ESWITCH ("Dataplane Specialization for High-performance OpenFlow Software
Switching", Molnar et al., SIGCOMM 2016) compiles an OpenFlow pipeline into a
specialized fast path using template-based code generation, instead of the
flow-caching architecture of Open vSwitch.

This package contains:

* :mod:`repro.core` — the ESWITCH compiler and runtime (the paper's
  contribution): parser/matcher/table/action templates, flow-table analysis,
  table decomposition, template specialization, linking, and transactional
  datapath updates.
* :mod:`repro.ovs` — a behaviorally faithful Open vSwitch baseline
  (microflow cache, megaflow cache with tuple space search, vswitchd).
* :mod:`repro.openflow` — the OpenFlow 1.3 substrate: match fields, flow
  tables, pipelines, actions, instructions, and controller messages.
* :mod:`repro.packet` / :mod:`repro.net` — packet headers, parsing, and
  address utilities.
* :mod:`repro.dpdk` — simulated DPDK substrate: DIR-24-8 LPM, collision-free
  hash, ports, and the l2fwd platform benchmark.
* :mod:`repro.simcpu` — the performance model: platform specs, a cache
  hierarchy simulator, per-template cycle cost atoms, and the analytic
  bounds of the paper's Section 4.4.
* :mod:`repro.traffic` / :mod:`repro.usecases` — workload generators and the
  four evaluation use cases (L2, L3, load balancer, access gateway).
* :mod:`repro.theory` — the Appendix: REGDECOMP and its 3SAT reduction.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
