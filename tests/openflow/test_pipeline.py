"""Tests for the pipeline and the reference interpreter."""

import pytest

from repro.openflow.actions import Controller, Drop, Output, SetField
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable, TableMissPolicy
from repro.openflow.instructions import (
    ApplyActions,
    ClearActions,
    GotoTable,
    WriteActions,
    WriteMetadata,
)
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline, PipelineError
from repro.packet import PacketBuilder


def http_pkt(in_port=1):
    return PacketBuilder(in_port=in_port).eth().ipv4(dst="192.0.2.1").tcp(dst_port=80).build()


class TestConstruction:
    def test_duplicate_table_id(self):
        with pytest.raises(PipelineError):
            Pipeline([FlowTable(0), FlowTable(0)])

    def test_missing_table(self):
        with pytest.raises(PipelineError):
            Pipeline([FlowTable(0)]).table(5)

    def test_validate_rejects_bad_goto(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(), priority=1, instructions=(GotoTable(9),)))
        with pytest.raises(PipelineError):
            Pipeline([t]).validate()

    def test_validate_rejects_backward_goto(self):
        t0, t1 = FlowTable(0), FlowTable(1)
        t1.add(FlowEntry(Match(), priority=1, instructions=(GotoTable(0),)))
        with pytest.raises(PipelineError):
            Pipeline([t0, t1]).validate()

    def test_first_table_is_lowest_id(self):
        p = Pipeline([FlowTable(3), FlowTable(1)])
        assert p.first_table.table_id == 1


class TestInterpreter:
    def test_apply_actions_immediate(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(tcp_dst=80), priority=1, actions=[Output(2)]))
        v = Pipeline([t]).process(http_pkt())
        assert v.output_ports == [2] and v.forwarded

    def test_goto_chains_tables(self):
        t0 = FlowTable(0)
        t0.add(FlowEntry(Match(in_port=1), priority=1, instructions=(GotoTable(1),)))
        t1 = FlowTable(1)
        t1.add(FlowEntry(Match(tcp_dst=80), priority=1, actions=[Output(7)]))
        v = Pipeline([t0, t1]).process(http_pkt())
        assert v.output_ports == [7]
        assert [tid for tid, _ in v.path] == [0, 1]

    def test_miss_drop_policy(self):
        t = FlowTable(0, miss_policy=TableMissPolicy.DROP)
        v = Pipeline([t]).process(http_pkt())
        assert v.dropped and v.table_miss

    def test_miss_controller_policy(self):
        t = FlowTable(0, miss_policy=TableMissPolicy.CONTROLLER)
        v = Pipeline([t]).process(http_pkt())
        assert v.to_controller and not v.dropped

    def test_write_actions_deferred_to_end(self):
        t0 = FlowTable(0)
        t0.add(
            FlowEntry(
                Match(),
                priority=1,
                instructions=(WriteActions([Output(5)]), GotoTable(1)),
            )
        )
        t1 = FlowTable(1)
        t1.add(FlowEntry(Match(), priority=1, instructions=()))
        v = Pipeline([t0, t1]).process(http_pkt())
        assert v.output_ports == [5]

    def test_clear_actions_wipes_write_set(self):
        t0 = FlowTable(0)
        t0.add(
            FlowEntry(
                Match(), priority=1,
                instructions=(WriteActions([Output(5)]), GotoTable(1)),
            )
        )
        t1 = FlowTable(1)
        t1.add(FlowEntry(Match(), priority=1, instructions=(ClearActions(),)))
        v = Pipeline([t0, t1]).process(http_pkt())
        assert v.output_ports == []

    def test_write_set_outputs_last(self):
        t = FlowTable(0)
        t.add(
            FlowEntry(
                Match(),
                priority=1,
                instructions=(
                    WriteActions([Output(5), SetField("ipv4_dst", 0x01020304)]),
                ),
            )
        )
        pkt = http_pkt()
        Pipeline([t]).process(pkt)
        # SetField executed before output despite being written after.
        assert bytes(pkt.data[30:34]) == b"\x01\x02\x03\x04"

    def test_write_metadata_visible_downstream(self):
        t0 = FlowTable(0)
        t0.add(
            FlowEntry(
                Match(), priority=1,
                instructions=(WriteMetadata(value=0xAB, mask=0xFF), GotoTable(1)),
            )
        )
        t1 = FlowTable(1)
        t1.add(FlowEntry(Match(metadata=0xAB), priority=1, actions=[Output(4)]))
        t1.add(FlowEntry(Match(), priority=0, actions=[Drop()]))
        v = Pipeline([t0, t1]).process(http_pkt())
        assert v.output_ports == [4]

    def test_drop_short_circuits(self):
        t = FlowTable(0)
        t.add(
            FlowEntry(
                Match(), priority=1,
                instructions=(ApplyActions([Drop()]), GotoTable(1)),
            )
        )
        p = Pipeline([t, FlowTable(1)])
        v = p.process(http_pkt())
        assert v.dropped
        assert [tid for tid, _ in v.path] == [0]

    def test_counters_update(self):
        t = FlowTable(0)
        e = FlowEntry(Match(), priority=1, actions=[Output(1)])
        t.add(e)
        p = Pipeline([t])
        p.process(http_pkt())
        p.process(http_pkt())
        assert e.counters.packets == 2
        assert e.counters.bytes == 128

    def test_trace_collects_probes(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(tcp_dst=443), priority=2, actions=[Output(1)]))
        t.add(FlowEntry(Match(tcp_dst=80), priority=1, actions=[Output(2)]))
        v = Pipeline([t]).process(http_pkt(), trace=True)
        assert len(v.probed) == 1
        _tid, probed = v.probed[0]
        assert len(probed) == 2  # the 443 rule was probed and missed

    def test_controller_punt_from_explicit_action(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(), priority=1, actions=[Controller()]))
        v = Pipeline([t]).process(http_pkt())
        assert v.to_controller

    def test_empty_pipeline_raises(self):
        with pytest.raises(PipelineError):
            Pipeline([]).process(http_pkt())
