"""Fig. 10: L2 switching packet rate, ES vs OVS, as the flow set grows.

Paper: MAC tables of 1/10/100/1K entries; ESWITCH stays at 12–14 Mpps
while OVS deteriorates as traffic locality is removed.
"""

from figshared import FLOW_AXIS, fmt_flows, publish, render_table, sweep_flows
from repro.core import ESwitch
from repro.ovs import OvsSwitch
from repro.usecases import l2

TABLE_SIZES = (1, 10, 100, 1_000)
L2_FLOW_AXIS = FLOW_AXIS


def series(make_switch, macs):
    return sweep_flows(
        make_switch, lambda n: l2.traffic(macs, n), flow_counts=L2_FLOW_AXIS
    )


def test_fig10_l2_packet_rate(benchmark):
    results = {}
    for size in TABLE_SIZES:
        _pipeline, macs = l2.build(size)
        results[("ES", size)] = series(
            lambda: ESwitch.from_pipeline(l2.build(size)[0]), macs
        )
        results[("OVS", size)] = series(lambda: OvsSwitch(l2.build(size)[0]), macs)

    header = ["flows"] + [f"{sw}({sz})" for sw in ("ES", "OVS") for sz in TABLE_SIZES]
    rows = []
    for i, n_flows in enumerate(L2_FLOW_AXIS):
        row = [fmt_flows(n_flows)]
        for sw in ("ES", "OVS"):
            for sz in TABLE_SIZES:
                row.append(f"{results[(sw, sz)][i][1].mpps:.2f}")
        rows.append(row)
    publish(
        "fig10_l2",
        render_table("Fig. 10: L2 switching packet rate [Mpps]", header, rows),
    )

    for sz in TABLE_SIZES:
        es = [m.mpps for _n, m in results[("ES", sz)]]
        ovs = [m.mpps for _n, m in results[("OVS", sz)]]
        # ESWITCH is robust: worst point within 2.5x of the best.
        assert min(es) > max(es) / 2.5
        # ESWITCH well above 10 Mpps when the flow set is small.
        assert es[0] > 10
        # ESWITCH >= OVS at every operating point.
        assert all(e >= o * 0.95 for e, o in zip(es, ovs))
        # OVS collapses once the microflow cache stops covering the mix.
        assert ovs[-1] < ovs[0] / 2

    pipeline, macs = l2.build(100)
    sw = ESwitch.from_pipeline(pipeline)
    flows = l2.traffic(macs, 100)
    counter = iter(range(10**9))
    benchmark(lambda: sw.process(flows[next(counter) % 100].copy()))
