"""Pack/unpack round-trips for every header class."""

import pytest
from hypothesis import given, strategies as st

from repro.net.checksum import verify_checksum
from repro.packet import headers as hdr


class TestEthernet:
    def test_roundtrip(self):
        eth = hdr.Ethernet(dst=0x0200AB, src=0x0300CD, ethertype=0x0800)
        packed = eth.pack()
        assert len(packed) == hdr.ETH_HEADER_LEN
        parsed, offset = hdr.Ethernet.unpack(packed)
        assert parsed == eth
        assert offset == 14

    def test_truncated(self):
        with pytest.raises(hdr.HeaderError):
            hdr.Ethernet.unpack(b"\x00" * 10)

    @given(st.integers(0, (1 << 48) - 1), st.integers(0, (1 << 48) - 1),
           st.integers(0, 0xFFFF))
    def test_roundtrip_property(self, dst, src, ethertype):
        eth = hdr.Ethernet(dst=dst, src=src, ethertype=ethertype)
        parsed, _ = hdr.Ethernet.unpack(eth.pack())
        assert parsed == eth


class TestVlan:
    def test_roundtrip(self):
        tag = hdr.Vlan(vid=123, pcp=5, dei=1, ethertype=0x0806)
        parsed, offset = hdr.Vlan.unpack(tag.pack(), 0)
        assert parsed == tag
        assert offset == hdr.VLAN_TAG_LEN

    @given(st.integers(0, 0xFFF), st.integers(0, 7))
    def test_vid_pcp_preserved(self, vid, pcp):
        parsed, _ = hdr.Vlan.unpack(hdr.Vlan(vid=vid, pcp=pcp).pack(), 0)
        assert (parsed.vid, parsed.pcp) == (vid, pcp)


class TestIPv4:
    def test_roundtrip(self):
        ip = hdr.IPv4(src=0x0A000001, dst=0xC0000201, proto=6, ttl=63,
                      dscp=10, ecn=1, ident=777, total_length=40)
        parsed, offset = hdr.IPv4.unpack(ip.pack(), 0)
        assert offset == 20
        for attr in ("src", "dst", "proto", "ttl", "dscp", "ecn", "ident", "total_length"):
            assert getattr(parsed, attr) == getattr(ip, attr)

    def test_checksum_valid(self):
        assert verify_checksum(hdr.IPv4(src=1, dst=2).pack())

    def test_rejects_ipv6_version(self):
        data = bytearray(hdr.IPv4().pack())
        data[0] = 0x60
        with pytest.raises(hdr.HeaderError):
            hdr.IPv4.unpack(bytes(data), 0)

    def test_rejects_short_ihl(self):
        data = bytearray(hdr.IPv4().pack())
        data[0] = 0x44  # ihl = 4 words = 16 bytes < minimum
        with pytest.raises(hdr.HeaderError):
            hdr.IPv4.unpack(bytes(data), 0)

    def test_options_respected(self):
        ip = hdr.IPv4(header_len=24)
        data = ip.pack() + b"\x00" * 4
        _parsed, offset = hdr.IPv4.unpack(data + b"\x00" * 4, 0)
        assert offset == 24


class TestTcpUdpIcmp:
    def test_tcp_roundtrip(self):
        tcp = hdr.TCP(src_port=1234, dst_port=80, seq=99, ack=100, flags=0x18,
                      window=1024)
        parsed, offset = hdr.TCP.unpack(tcp.pack(), 0)
        assert offset == 20
        assert (parsed.src_port, parsed.dst_port, parsed.seq, parsed.ack,
                parsed.flags, parsed.window) == (1234, 80, 99, 100, 0x18, 1024)

    def test_tcp_bad_offset(self):
        data = bytearray(hdr.TCP().pack())
        data[12] = 0x10  # data offset = 1 word
        with pytest.raises(hdr.HeaderError):
            hdr.TCP.unpack(bytes(data), 0)

    def test_udp_roundtrip(self):
        udp = hdr.UDP(src_port=53, dst_port=5353, length=12)
        parsed, offset = hdr.UDP.unpack(udp.pack(), 0)
        assert offset == 8
        assert (parsed.src_port, parsed.dst_port, parsed.length) == (53, 5353, 12)

    def test_icmp_roundtrip(self):
        parsed, _ = hdr.ICMP.unpack(hdr.ICMP(type=3, code=1).pack(), 0)
        assert (parsed.type, parsed.code) == (3, 1)


class TestArp:
    def test_roundtrip(self):
        arp = hdr.ARP(op=2, sha=0xAA, spa=0x0A000001, tha=0xBB, tpa=0x0A000002)
        parsed, offset = hdr.ARP.unpack(arp.pack(), 0)
        assert offset == hdr.ARP_IPV4_LEN
        assert parsed == arp

    def test_rejects_non_eth_ipv4(self):
        data = bytearray(hdr.ARP().pack())
        data[1] = 99  # wrong htype
        with pytest.raises(hdr.HeaderError):
            hdr.ARP.unpack(bytes(data), 0)
