"""OpenFlow group tables: ALL, SELECT, and INDIRECT groups.

Groups add a level of indirection between flow entries and actions: many
rules point at one group, and changing the group's buckets re-steers all
of them without touching a single flow table — which also means no
datapath recompilation (ESWITCH) and no cache invalidation (OVS): the
:class:`GroupAction` resolves its buckets at execution time, on every
datapath and on cached fast paths alike.

Supported group types:

* **INDIRECT** — exactly one bucket; pure indirection.
* **SELECT** — one bucket chosen per packet by a deterministic flow hash
  (5-tuple based), the classic ECMP/load-balancing group.
* **ALL** — every bucket executes (packet replication). Buckets of ALL
  groups are restricted to output-only actions here, the flood/multicast
  pattern; per-bucket packet cloning with rewrites is out of scope.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.openflow.actions import Action, Output
from repro.openflow.fields import field_by_name
from repro.packet.parser import ParsedPacket

if TYPE_CHECKING:
    from repro.openflow.pipeline import Verdict


class GroupType(enum.Enum):
    ALL = "all"
    SELECT = "select"
    INDIRECT = "indirect"


class GroupError(ValueError):
    """Raised on malformed group definitions or dangling references."""


@dataclass
class Bucket:
    """One alternative action list inside a group."""

    actions: tuple[Action, ...]
    weight: int = 1

    def __init__(self, actions: Iterable[Action], weight: int = 1):
        self.actions = tuple(actions)
        if weight < 1:
            raise GroupError("bucket weight must be positive")
        self.weight = weight


class Group:
    """A group entry: type + buckets."""

    def __init__(self, group_id: int, group_type: GroupType,
                 buckets: Sequence[Bucket]):
        if group_id < 0:
            raise GroupError(f"invalid group id {group_id}")
        if not buckets:
            raise GroupError("a group needs at least one bucket")
        if group_type is GroupType.INDIRECT and len(buckets) != 1:
            raise GroupError("an indirect group has exactly one bucket")
        if group_type is GroupType.ALL:
            for bucket in buckets:
                if not all(isinstance(a, Output) for a in bucket.actions):
                    raise GroupError(
                        "ALL-group buckets are restricted to output actions"
                    )
        self.group_id = group_id
        self.group_type = group_type
        self.buckets = list(buckets)
        self.packets = 0

    def __repr__(self) -> str:
        return (f"Group({self.group_id}, {self.group_type.value}, "
                f"{len(self.buckets)} buckets)")


_HASH_FIELDS = tuple(
    field_by_name(n).extract
    for n in ("eth_src", "eth_dst", "ipv4_src", "ipv4_dst", "ipv6_src",
              "ipv6_dst", "ip_proto", "tcp_src", "tcp_dst", "udp_src",
              "udp_dst")
)


def flow_hash(view: ParsedPacket) -> int:
    """A deterministic per-flow hash for SELECT bucket choice."""
    h = 0x811C9DC5
    for extract in _HASH_FIELDS:
        value = extract(view)
        if value is None:
            continue
        h = (h ^ (value & 0xFFFFFFFF) ^ (value >> 32)) * 0x01000193 & 0xFFFFFFFF
    return h


class GroupTable:
    """The switch's group inventory."""

    def __init__(self) -> None:
        self._groups: dict[int, Group] = {}
        self.version = 0

    def add(self, group: Group) -> Group:
        self._groups[group.group_id] = group
        self.version += 1
        return group

    def remove(self, group_id: int) -> bool:
        if self._groups.pop(group_id, None) is None:
            return False
        self.version += 1
        return True

    def get(self, group_id: int) -> Group:
        group = self._groups.get(group_id)
        if group is None:
            raise GroupError(f"no group with id {group_id}")
        return group

    def __contains__(self, group_id: int) -> bool:
        return group_id in self._groups

    def __len__(self) -> int:
        return len(self._groups)


@dataclass(frozen=True)
class GroupAction(Action):
    """Send the packet through a group (OFPAT_GROUP).

    Binds the switch's :class:`GroupTable` so bucket resolution happens at
    execution time — group modifications are visible immediately on every
    datapath, cached fast paths included.
    """

    table: GroupTable
    group_id: int

    def apply(self, view: ParsedPacket, verdict: "Verdict") -> None:
        group = self.table.get(self.group_id)
        group.packets += 1
        if group.group_type is GroupType.ALL:
            for bucket in group.buckets:
                for action in bucket.actions:
                    action.apply(view, verdict)
            return
        if group.group_type is GroupType.INDIRECT:
            bucket = group.buckets[0]
        else:  # SELECT: weighted deterministic choice by flow hash
            total = sum(b.weight for b in group.buckets)
            point = flow_hash(view) % total
            for bucket in group.buckets:
                point -= bucket.weight
                if point < 0:
                    break
        for action in bucket.actions:
            action.apply(view, verdict)

    def __hash__(self) -> int:
        return hash((id(self.table), self.group_id))

    def __repr__(self) -> str:
        return f"GroupAction(group={self.group_id})"
