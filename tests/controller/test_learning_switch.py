"""Tests for the MAC-learning controller application."""

import pytest

from repro.controller.learning_switch import LearningSwitch, build_pipeline
from repro.core import ESwitch
from repro.openflow.actions import FLOOD_PORT
from repro.openflow.timeouts import ExpiryManager
from repro.ovs import OvsSwitch
from repro.packet import PacketBuilder

A, B, C = 0x02_0000_0000_0A, 0x02_0000_0000_0B, 0x02_0000_0000_0C


def pkt(src, dst, in_port):
    return (PacketBuilder(in_port=in_port).eth(src=src, dst=dst)
            .ipv4().udp().build())


def make(kind):
    pipeline = build_pipeline()
    if kind == "es":
        switch = ESwitch.from_pipeline(pipeline)
    else:
        switch = OvsSwitch(pipeline)
    app = LearningSwitch(switch)
    switch.packet_in_handler = app
    return switch, app


@pytest.mark.parametrize("kind", ["es", "ovs"])
class TestLearning:
    def test_unknown_floods_and_learns(self, kind):
        switch, app = make(kind)
        verdict = switch.process(pkt(A, B, in_port=1))
        assert FLOOD_PORT in verdict.output_ports
        assert app.mac_table == {A: 1}

    def test_return_traffic_unicast(self, kind):
        switch, app = make(kind)
        switch.process(pkt(A, B, in_port=1))   # learn A@1, flood (B unknown)
        switch.process(pkt(B, A, in_port=2))   # learn B@2, unicast to A
        # Both stations known: pure unicast, no punts, both directions.
        assert switch.process(pkt(B, A, in_port=2)).output_ports == [1]
        assert switch.process(pkt(A, B, in_port=1)).output_ports == [2]
        assert app.learned == 2

    def test_station_move_rewrites_rule(self, kind):
        switch, app = make(kind)
        switch.process(pkt(A, B, in_port=1))
        switch.process(pkt(A, B, in_port=7))   # A moved to port 7
        assert app.mac_table[A] == 7
        assert app.moved == 1
        # Traffic toward A now goes to port 7 (C is unknown, so its packet
        # also punts — the data-plane output is the last port).
        verdict = switch.process(pkt(C, A, in_port=3))
        assert verdict.output_ports[-1] == 7

    def test_no_relearn_storm(self, kind):
        switch, app = make(kind)
        for _ in range(10):
            switch.process(pkt(A, B, in_port=1))
        # Every A->B packet floods (B unknown) and punts, but A is only
        # learned once.
        assert app.learned == 1


class TestEswitchSpecifics:
    def test_learning_is_incremental_after_hash_promotion(self):
        switch, app = make("es")
        # Learn enough stations to promote the table past direct code.
        for i in range(8):
            switch.process(pkt(A + 16 * i, B, in_port=i % 4 + 1))
        base_incremental = switch.update_stats.incremental
        switch.process(pkt(A + 16 * 50, B, in_port=2))
        # One new station = two flow-mods (src pass-through + dst rule),
        # both absorbed as non-destructive hash inserts.
        assert switch.update_stats.incremental == base_incremental + 2

    def test_idle_expiry_forgets_station(self):
        switch, app = make("es")
        app.idle_timeout = 60

        def on_expired(_tid, entry, _reason):
            mac = entry.match.value_of("eth_dst")
            if mac is not None:
                app.forget(mac)

        mgr = ExpiryManager(switch, on_expired=on_expired)
        switch.process(pkt(A, B, in_port=1))
        mgr.observe(0.0)
        assert mgr.tick(59.0) == []
        expired = mgr.tick(61.0)
        assert len(expired) == 2  # the src pass-through and the dst rule
        assert A not in app.mac_table
        # Traffic to A floods again until relearned.
        verdict = switch.process(pkt(C, A, in_port=3))
        assert FLOOD_PORT in verdict.output_ports
