"""Tests for the ESWITCH update engine (Section 3.4)."""

import pytest

from repro.core import CompileConfig, ESwitch
from repro.core.analysis import TemplateKind
from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.instructions import ApplyActions
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.pipeline import Pipeline
from repro.packet import PacketBuilder
from repro.usecases import l2, l3


def add(table_id, priority=1, port=1, **match):
    return FlowMod(
        FlowModCommand.ADD,
        table_id,
        Match(**match),
        priority=priority,
        instructions=(ApplyActions([Output(port)]),),
    )


def delete(table_id, priority=0, **match):
    return FlowMod(FlowModCommand.DELETE, table_id, Match(**match), priority=priority)


def mac_pkt(dst):
    return PacketBuilder().eth(dst=dst).ipv4().tcp().build()


class TestIncrementalHash:
    def setup_method(self):
        p, self.macs = l2.build(50)
        self.sw = ESwitch.from_pipeline(p)

    def test_add_is_incremental(self):
        self.sw.apply_flow_mod(add(0, eth_dst=0xABCD))
        assert self.sw.update_stats.incremental == 1
        assert self.sw.update_stats.rebuilds == 0
        assert self.sw.process(mac_pkt(0xABCD)).forwarded

    def test_delete_is_incremental(self):
        self.sw.apply_flow_mod(delete(0, priority=1, eth_dst=self.macs[0]))
        assert self.sw.update_stats.incremental == 1
        assert not self.sw.process(mac_pkt(self.macs[0])).forwarded

    def test_same_code_object_after_incremental(self):
        fn_before = self.sw.compiled_table(0).fn
        self.sw.apply_flow_mod(add(0, eth_dst=0xABCD))
        assert self.sw.compiled_table(0).fn is fn_before  # non-destructive

    def test_catch_all_update_incremental(self):
        self.sw.apply_flow_mod(add(0, priority=0, port=7))
        assert self.sw.update_stats.incremental == 1
        assert self.sw.process(mac_pkt(0xDEAD)).output_ports == [7]

    def test_prereq_violation_falls_back(self):
        """Adding a differently-shaped rule breaks the global mask: the
        table falls back with a rebuild — and because the fallen-back
        table is decomposable, ESWITCH promotes it straight back to fast
        templates via table decomposition (Section 3.2)."""
        self.sw.apply_flow_mod(add(0, priority=5, tcp_dst=80))
        assert self.sw.update_stats.fallbacks == 1
        assert self.sw.table_kinds()[0].startswith("decomposed[")
        # And it still forwards correctly, on both rule shapes.
        assert self.sw.process(mac_pkt(self.macs[3])).forwarded
        http = PacketBuilder().eth(dst=0x123456).ipv4().tcp(dst_port=80).build()
        assert self.sw.process(http).forwarded

    def test_fallback_without_decomposition_is_linked_list(self):
        p, macs = l2.build(50)
        sw = ESwitch.from_pipeline(p, config=CompileConfig(decompose=False))
        sw.apply_flow_mod(add(0, priority=5, tcp_dst=80))
        assert sw.compiled_table(0).kind is TemplateKind.LINKED_LIST
        assert sw.process(mac_pkt(macs[3])).forwarded


class TestIncrementalLpm:
    def setup_method(self):
        p, self.fib = l3.build(100)
        self.sw = ESwitch.from_pipeline(p)

    def test_route_add_incremental(self):
        self.sw.apply_flow_mod(add(0, priority=24, port=9, ipv4_dst="203.0.113.0/24"))
        assert self.sw.update_stats.incremental == 1
        pkt = PacketBuilder().eth().ipv4(dst="203.0.113.55").udp().build()
        assert self.sw.process(pkt).output_ports == [9]

    def test_route_delete_incremental(self):
        value, depth, _port = self.fib[0]
        from repro.net.addresses import int_to_ip

        self.sw.apply_flow_mod(delete(0, priority=depth,
                                      ipv4_dst=f"{int_to_ip(value)}/{depth}"))
        assert self.sw.update_stats.incremental == 1

    def test_lpm_kind_stable_across_updates(self):
        for i in range(5):
            self.sw.apply_flow_mod(
                add(0, priority=24, port=i, ipv4_dst=f"203.0.{i}.0/24")
            )
        assert self.sw.compiled_table(0).kind is TemplateKind.LPM


class TestDirectRebuild:
    def test_direct_always_rebuilds(self):
        """'Complete rebuilding happens only for the direct code template
        (unconditionally)'."""
        t = FlowTable(0)
        t.add(FlowEntry(Match(tcp_dst=80), priority=1, actions=[Output(1)]))
        sw = ESwitch.from_pipeline(Pipeline([t]))
        assert sw.compiled_table(0).kind is TemplateKind.DIRECT
        sw.apply_flow_mod(add(0, priority=2, tcp_dst=443))
        assert sw.update_stats.rebuilds == 1
        assert sw.update_stats.incremental == 0

    def test_direct_upgrades_to_hash_when_growing(self):
        t = FlowTable(0)
        for i in range(3):
            t.add(FlowEntry(Match(eth_dst=i), priority=1, actions=[Output(1)]))
        sw = ESwitch.from_pipeline(Pipeline([t]))
        assert sw.compiled_table(0).kind is TemplateKind.DIRECT
        for i in range(3, 8):
            sw.apply_flow_mod(add(0, eth_dst=i))
        assert sw.compiled_table(0).kind is TemplateKind.HASH


class TestNewTables:
    def test_flow_mod_creates_table(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(tcp_dst=80), priority=1, actions=[Output(1)]))
        sw = ESwitch.from_pipeline(Pipeline([t]))
        sw.apply_flow_mod(add(3, eth_dst=5))
        assert 3 in sw.table_kinds()


class TestTransactions:
    def setup_method(self):
        p, self.macs = l2.build(20)
        self.sw = ESwitch.from_pipeline(p)

    def test_batch_applies_atomically(self):
        mods = [add(0, eth_dst=0x9000 + i) for i in range(5)]
        self.sw.apply_flow_mods(mods)
        for i in range(5):
            assert self.sw.process(mac_pkt(0x9000 + i)).forwarded

    def test_failed_batch_rolls_back(self):
        bad = FlowMod(
            FlowModCommand.ADD, 0, Match(eth_dst=1), priority=-1  # invalid
        )
        mods = [add(0, eth_dst=0x9000), bad]
        with pytest.raises(ValueError):
            self.sw.apply_flow_mods(mods)
        # The first mod must have been rolled back too.
        assert not self.sw.process(mac_pkt(0x9000)).forwarded
        assert len(self.sw.pipeline.table(0)) == 20

    def test_rollback_restores_datapath_behavior(self):
        victim = self.macs[0]
        bad = FlowMod(FlowModCommand.ADD, 0, Match(eth_dst=2), priority=-1)
        with pytest.raises(ValueError):
            self.sw.apply_flow_mods(
                [delete(0, priority=1, eth_dst=victim), bad]
            )
        assert self.sw.process(mac_pkt(victim)).forwarded

    def test_rollback_removes_created_tables(self):
        bad = FlowMod(FlowModCommand.ADD, 7, Match(eth_dst=2), priority=-1)
        with pytest.raises(ValueError):
            self.sw.apply_flow_mods([add(7, eth_dst=1), bad])
        assert 7 not in self.sw.table_kinds()


class TestUpdateCosts:
    def test_incremental_cheaper_than_rebuild(self):
        p, _ = l2.build(50)
        sw = ESwitch.from_pipeline(p)
        inc = sw.apply_flow_mod(add(0, eth_dst=0xAA))
        reb = sw.apply_flow_mod(add(0, priority=5, tcp_dst=80))  # fallback
        assert inc < reb

    def test_no_cache_invalidation_concept(self):
        """ESWITCH has no flow cache: updates never flush datapath state
        for other tables."""
        p, fib = l3.build(30)
        sw = ESwitch.from_pipeline(p)
        before = sw.compiled_table(0).fn
        sw.apply_flow_mod(add(0, priority=24, port=3, ipv4_dst="203.0.113.0/24"))
        assert sw.compiled_table(0).fn is before
