"""Update-channel models for the Fig. 17 setup-time experiment.

Two ways to feed flow-mods to a switch, as in the paper:

* **CLI** (``ovs-ofctl``-style): a thin per-invocation overhead; total time
  is dominated by switch-side update processing — where ESWITCH's
  template compilation is about five times cheaper than OVS's
  transaction + revalidation machinery;
* **controller** (Ryu/ODL-style): a per-message protocol/serialization
  latency that dwarfs either switch's processing — "it is the OpenFlow
  controller, rather than ESWITCH itself, that bottlenecks update rates".

Switch-side cost comes from the switch object itself: ESwitch's
``apply_flow_mod`` returns its estimated cycles; OVS's per-mod cost is the
fixed ``OVS_FLOW_MOD_CYCLES`` below (transaction commit + classifier
update + cache revalidation kick-off).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.eswitch import ESwitch
from repro.openflow.messages import FlowMod
from repro.ovs.switch import OvsSwitch
from repro.simcpu.platform import Platform, XEON_E5_2620


@dataclass(frozen=True)
class UpdateChannel:
    """A flow-mod delivery path with a fixed per-message latency."""

    name: str
    per_message_s: float


CLI_CHANNEL = UpdateChannel("CLI", per_message_s=150e-6)
CONTROLLER_CHANNEL = UpdateChannel("ctrl", per_message_s=1e-3)

#: vswitchd work per flow-mod: ofproto transaction, classifier insertion,
#: and kicking the revalidators (calibrated to the ~5x CLI gap of Fig. 17).
OVS_FLOW_MOD_CYCLES = 1.2e6


def apply_and_cost_cycles(switch, mod: FlowMod) -> float:
    """Apply one flow-mod; return the switch-side cost in cycles."""
    if isinstance(switch, ESwitch):
        return switch.apply_flow_mod(mod)
    if isinstance(switch, OvsSwitch):
        switch.apply_flow_mod(mod)
        return OVS_FLOW_MOD_CYCLES
    switch.apply_flow_mod(mod)
    return 0.0


def setup_time(
    switch,
    mods: Sequence[FlowMod],
    channel: UpdateChannel,
    platform: Platform = XEON_E5_2620,
) -> float:
    """Total seconds to push ``mods`` through ``channel`` into ``switch``."""
    cycles = 0.0
    for mod in mods:
        cycles += apply_and_cost_cycles(switch, mod)
    return len(mods) * channel.per_message_s + cycles / platform.freq_hz
