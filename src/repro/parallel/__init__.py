"""Real-parallel sharded execution: N datapath replicas behind one facade.

Everything else in this repo *models* multicore scaling
(:func:`repro.traffic.measure_multicore` charges an analytic coherence
term per extra core). This package actually runs packets in parallel:
:class:`~repro.parallel.engine.ShardedESwitch` spawns worker processes
(threads as a fallback), each owning a private fused
:class:`~repro.core.eswitch.ESwitch` replica compiled from the same
pipeline — the shared-nothing, run-to-completion shape of a DPDK
per-core datapath (and of OVS's per-PMD-thread datapaths, NSDI'15).

* :mod:`repro.parallel.rss` — the RSS-style 5-tuple hash that scatters
  packets to shards, flow-sticky like a NIC's receive-side scaling;
* :mod:`repro.parallel.wire` — the compact picklable forms packets and
  verdicts take across the shard boundary;
* :mod:`repro.parallel.worker` — the shard worker loop (one replica,
  one command channel, one per-core cycle meter);
* :mod:`repro.parallel.engine` — the scatter/gather facade with
  epoch-synced control-plane broadcast.
"""

from repro.parallel.engine import (
    EpochSyncError,
    ShardedESwitch,
    ShardWorkerError,
)
from repro.parallel.rss import rss_hash, shard_of

__all__ = [
    "EpochSyncError",
    "ShardWorkerError",
    "ShardedESwitch",
    "rss_hash",
    "shard_of",
]
