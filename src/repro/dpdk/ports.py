"""Simulated switch ports with TX/RX counters.

Stands in for the DPDK poll-mode drivers: the harness pushes generated
packets in and reads per-port counters out. No actual queueing is modeled —
the evaluation measures datapath processing, not NIC behavior — but each
port keeps counts so tests can assert on where traffic went.
"""

from __future__ import annotations

from repro.packet.packet import Packet


class Port:
    """One switch port: counters plus an optional capture buffer."""

    def __init__(self, port_no: int, capture: bool = False):
        self.port_no = port_no
        self.rx_packets = 0
        self.rx_bytes = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        self.capture = capture
        self.captured: list[Packet] = []

    def record_rx(self, pkt: Packet) -> None:
        self.rx_packets += 1
        self.rx_bytes += len(pkt)

    def record_tx(self, pkt: Packet) -> None:
        self.tx_packets += 1
        self.tx_bytes += len(pkt)
        if self.capture:
            self.captured.append(pkt)

    def __repr__(self) -> str:
        return f"Port({self.port_no}, rx={self.rx_packets}, tx={self.tx_packets})"


class PortSet:
    """The switch's port inventory, created on demand."""

    def __init__(self, capture: bool = False):
        self._ports: dict[int, Port] = {}
        self._capture = capture

    def port(self, port_no: int) -> Port:
        if port_no not in self._ports:
            self._ports[port_no] = Port(port_no, capture=self._capture)
        return self._ports[port_no]

    def __iter__(self):
        return iter(sorted(self._ports.values(), key=lambda p: p.port_no))

    def __len__(self) -> int:
        return len(self._ports)

    def total_tx(self) -> int:
        return sum(p.tx_packets for p in self._ports.values())

    def total_rx(self) -> int:
        return sum(p.rx_packets for p in self._ports.values())
