"""Platform benchmark (Section 4.2): the DPDK l2fwd port-forward ceiling.

Paper: "The maximum single-core packet rate attainable with DPDK on this
platform is 15.7 million packets per second."
"""

import pytest

from figshared import publish, render_table
from repro.dpdk.l2fwd import l2fwd, l2fwd_rate_pps
from repro.packet import PacketBuilder
from repro.simcpu.platform import XEON_E5_2620
from repro.simcpu.recorder import CycleMeter


def test_platform_l2fwd_ceiling(benchmark):
    rate = l2fwd_rate_pps()

    # Validate via the metered path too, not just the closed form.
    meter = CycleMeter(XEON_E5_2620)
    pkt = PacketBuilder(in_port=0).eth().build()
    for _ in range(1000):
        meter.begin_packet()
        l2fwd(pkt, meter)
        meter.end_packet()
    metered_rate = XEON_E5_2620.freq_hz / meter.mean_cycles_per_packet

    publish(
        "platform_l2fwd",
        render_table(
            "Platform benchmark: DPDK l2fwd (paper: 15.7 Mpps)",
            ("source", "Mpps"),
            [
                ("closed form", f"{rate / 1e6:.2f}"),
                ("metered loop", f"{metered_rate / 1e6:.2f}"),
                ("paper", "15.70"),
            ],
        ),
    )
    assert rate == pytest.approx(15.7e6, rel=0.005)
    assert metered_rate == pytest.approx(rate, rel=0.001)

    benchmark(lambda: l2fwd(pkt))
