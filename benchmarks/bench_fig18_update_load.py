"""Fig. 18: normed packet rate under growing update intensity.

Paper (gateway, 1K active flows): "ESWITCH churns out 95% of its nominal
packet rate when the last level IP routing table … is updated 100 times
per second and even at 100K update/sec intensity it maintains 80% of its
unloaded performance; contrarily, OVS throughput falls by more than 65%
even for 100 updates/sec due to deteriorating flow cache hit rates."
Batched updates (20 add+delete periodically): ES -3%, OVS -23%.

The mechanisms, not curve fits, produce these numbers here: ESWITCH
absorbs each route flap as a non-destructive LPM update (a few hundred
cycles plus cache pollution on the shared core), while each OVS flow-mod
brute-force invalidates the entire megaflow + microflow caches, which the
datapath then repopulates through upcalls.
"""

import itertools

from figshared import publish, render_table
from repro.core import ESwitch
from repro.openflow.instructions import ApplyActions
from repro.openflow.actions import Output
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.ovs import OvsSwitch
from repro.simcpu.platform import XEON_E5_2620
from repro.traffic import measure
from repro.usecases import gateway

N_CE, USERS, PREFIXES = 10, 20, 2_000
N_FLOWS = 1_000
UPDATE_AXIS = (0, 100, 1_000, 10_000, 100_000)
#: fresh cache lines an update's new state displaces on the shared core.
POLLUTION_LINES = 32


def build():
    return gateway.build(n_ce=N_CE, users_per_ce=USERS, n_prefixes=PREFIXES)[0]


def route_mods():
    """An endless alternating add/delete stream against Table 110."""
    for i in itertools.count():
        prefix = f"203.{(i >> 8) & 255}.{i & 255}.0/24"
        yield FlowMod(FlowModCommand.ADD, gateway.ROUTING_TABLE, Match(ipv4_dst=prefix),
                      priority=24, instructions=(ApplyActions([Output(2)]),))
        yield FlowMod(FlowModCommand.DELETE, gateway.ROUTING_TABLE,
                      Match(ipv4_dst=prefix), priority=24)


def measure_under_load(switch, flows, updates_per_sec, is_eswitch):
    mods = route_mods()
    state = {"cycles_seen": 0.0, "credit": 0.0, "line": 0}

    def hook(_i, meter):
        if updates_per_sec == 0:
            return
        delta = meter.total_cycles - state["cycles_seen"]
        state["cycles_seen"] = meter.total_cycles
        state["credit"] += updates_per_sec * delta / XEON_E5_2620.freq_hz
        while state["credit"] >= 1.0:
            state["credit"] -= 1.0
            mod = next(mods)
            if is_eswitch:
                cycles = switch.apply_flow_mod(mod)
                meter.charge(cycles)  # control work shares the core
                for _ in range(POLLUTION_LINES):
                    state["line"] += 1
                    meter.touch(("upd", state["line"] & 0xFFFF))
            else:
                switch.apply_flow_mod(mod)  # wholesale cache invalidation

    # The measured window must span several update intervals; at low
    # intensities the interval (freq / u cycles) dwarfs the default window.
    n_packets = 20_000
    if updates_per_sec:
        warm_cycles_per_pkt = 350.0
        per_interval = XEON_E5_2620.freq_hz / updates_per_sec / warm_cycles_per_pkt
        n_packets = int(min(160_000, max(20_000, 3 * per_interval)))
    return measure(switch, flows, n_packets=n_packets, warmup=4_000,
                   update_hook=hook)


def test_fig18_update_intensity(benchmark):
    _p, fib = gateway.build(n_ce=N_CE, users_per_ce=USERS, n_prefixes=PREFIXES)
    flows = gateway.traffic(fib, N_FLOWS, n_ce=N_CE, users_per_ce=USERS)

    es_rates, ovs_rates, reval_rates = [], [], []
    for u in UPDATE_AXIS:
        es_rates.append(measure_under_load(
            ESwitch.from_pipeline(build()), flows, u, True).pps)
        ovs_rates.append(measure_under_load(
            OvsSwitch(build()), flows, u, False).pps)
        # The smarter-revalidator variant brackets the paper's measured
        # OVS curve from above (full invalidation brackets from below).
        reval_rates.append(measure_under_load(
            OvsSwitch(build(), invalidation="revalidate"), flows, u, False).pps)

    es_normed = [r / es_rates[0] for r in es_rates]
    ovs_normed = [r / ovs_rates[0] for r in ovs_rates]
    reval_normed = [r / reval_rates[0] for r in reval_rates]
    rows = [
        (u if u else "unloaded", f"{e:.3f}", f"{o:.3f}", f"{rv:.3f}")
        for u, e, o, rv in zip(UPDATE_AXIS, es_normed, ovs_normed, reval_normed)
    ]
    publish(
        "fig18_update_load",
        render_table(
            "Fig. 18: normed packet rate vs updates/sec "
            "(paper: ES >=0.80 @100K/s; OVS <=0.35 @100/s)",
            ("updates/s", "ES", "OVS(full-inval)", "OVS(revalidate)"),
            rows,
        ),
    )

    by_u_es = dict(zip(UPDATE_AXIS, es_normed))
    by_u_ovs = dict(zip(UPDATE_AXIS, ovs_normed))
    # ESWITCH: modest, graceful degradation (paper: 0.95 @100/s, 0.80
    # @100K/s).
    assert by_u_es[100] > 0.93
    assert 0.60 < by_u_es[100_000] < 0.95
    # OVS: the cache-invalidation cliff arrives by 100 updates/sec
    # (paper: -65%; our recovery upcalls are costlier, so the cliff is
    # deeper — see EXPERIMENTS.md).
    assert by_u_ovs[100] < 0.50
    assert by_u_ovs[100_000] < by_u_ovs[100] * 1.2

    sw = ESwitch.from_pipeline(build())
    mods = route_mods()
    benchmark(lambda: sw.apply_flow_mod(next(mods)))
