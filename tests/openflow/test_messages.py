"""Tests for OpenFlow channel messages."""

from repro.openflow.actions import Output
from repro.openflow.instructions import ApplyActions, GotoTable
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand, PacketIn, PacketOut
from repro.packet import PacketBuilder


class TestFlowMod:
    def test_to_entry_carries_everything(self):
        mod = FlowMod(
            FlowModCommand.ADD,
            table_id=3,
            match=Match(tcp_dst=80),
            priority=7,
            instructions=(ApplyActions([Output(1)]), GotoTable(4)),
            cookie=0xC0FFEE,
        )
        entry = mod.to_entry()
        assert entry.priority == 7
        assert entry.match == Match(tcp_dst=80)
        assert entry.goto_table == 4
        assert entry.cookie == 0xC0FFEE

    def test_default_instructions_empty(self):
        entry = FlowMod(FlowModCommand.ADD, 0, Match()).to_entry()
        assert entry.instructions == ()

    def test_commands(self):
        assert FlowModCommand("delete") is FlowModCommand.DELETE


class TestPacketMessages:
    def test_packet_in_defaults(self):
        pkt = PacketBuilder().eth().build()
        msg = PacketIn(pkt=pkt, table_id=5)
        assert msg.reason == "miss"
        assert msg.pkt is pkt

    def test_packet_out(self):
        pkt = PacketBuilder().eth().build()
        msg = PacketOut(pkt=pkt, out_port=3)
        assert msg.out_port == 3
