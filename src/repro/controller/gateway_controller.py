"""The gateway's admission controller (reactive NAT provisioning).

"Packets missing the per-CE tables are passed to the controller that does
admission control, allocates a public IP, and installs per-user 'NAT'
rules into the proper tables." (Section 4.1)

The controller recognizes subscribers by their private address shape
(10.<ce>.0.<user>); unknown senders are rejected (no rules installed).
"""

from __future__ import annotations

from repro.net.addresses import ip_to_int
from repro.openflow.messages import FlowModFailedCode, PacketIn
from repro.packet.parser import parse
from repro.openflow.fields import field_by_name
from repro.usecases import gateway


class GatewayController:
    """Handles packet-ins from the vPE's per-CE admission tables.

    Hardened like :class:`~repro.controller.learning_switch.
    LearningSwitch`: garbage packet-ins are counted (``malformed``) and
    dropped, never raised, and a subscriber is marked admitted only after
    the switch actually accepted *all* the NAT rules — a rejected install
    (``install_failures``) leaves the subscriber un-admitted so the next
    punt retries.

    A batch bounced for ``TABLE_FULL`` is **split**, not retried
    verbatim: the errors echo the offending mods (OpenFlow echoes the
    failed request in ``ErrorMsg.data``), so the admissible complement is
    resubmitted immediately and only the overflow is parked in
    ``pending_overflow`` for the subscriber's next punt. Retrying the
    whole batch verbatim would wedge a subscriber forever behind one full
    table even when every other rule had room.

    ``via`` (on :meth:`handle`/``__call__``) selects which switch handle
    receives the install, so one controller instance can serve every leaf
    of a fabric — each leaf's session passes itself as ``via`` and the
    rules land on the switch that punted.
    """

    def __init__(self, switch=None, n_ce: int = 10, users_per_ce: int = 20):
        self.switch = switch
        self.n_ce = n_ce
        self.users_per_ce = users_per_ce
        self.admitted: set[tuple[int, int]] = set()
        #: subscriber -> mods bounced with TABLE_FULL, retried alone on
        #: the subscriber's next punt (the complement already landed).
        self.pending_overflow: "dict[tuple[int, int], list]" = {}
        self.rejected = 0
        self.packet_ins = 0
        self.malformed = 0
        self.install_failures = 0
        self.table_full_splits = 0
        self.overflow_retries = 0

    def __call__(self, packet_in: PacketIn, via=None) -> None:
        self.handle(packet_in, via=via)

    def handle(self, packet_in: PacketIn, via=None) -> None:
        self.packet_ins += 1
        target = via if via is not None else self.switch
        try:
            view = parse(packet_in.pkt)
            src = field_by_name("ipv4_src").extract(view)
            vlan = field_by_name("vlan_vid").extract(view)
        except Exception:
            self.malformed += 1
            return
        subscriber = self._subscriber_of(src, vlan)
        if subscriber is None:
            self.rejected += 1
            return
        if subscriber in self.admitted:
            return  # rules already installed; packet raced the update
        ce, user = subscriber
        overflow_only = self.pending_overflow.get(subscriber)
        if overflow_only is not None:
            self.overflow_retries += 1
            mods = list(overflow_only)
        else:
            mods = list(gateway.nat_flow_mods(ce, user))
        landed, overflow = self._install(mods, target)
        if landed:
            self.pending_overflow.pop(subscriber, None)
            self.admitted.add(subscriber)
            return
        self.install_failures += 1
        if overflow is not None:
            # The complement landed; park only the overflow for retry.
            self.pending_overflow[subscriber] = overflow
        # else: nothing landed (channel down, hard reject) — the same
        # batch is retried verbatim on the next punt.

    def _install(self, mods, target) -> "tuple[bool, list | None]":
        """Install a batch on ``target``.

        Returns ``(True, None)`` when everything landed; ``(False,
        overflow)`` when a TABLE_FULL split landed the complement and
        ``overflow`` must be retried later; ``(False, None)`` when
        nothing landed.
        """
        submit = getattr(target, "submit_flow_mods", None)
        if submit is None:
            for mod in mods:
                target.apply_flow_mod(mod)
            return True, None
        reply = submit(list(mods))
        if reply:
            return True, None
        overflow_ids = {
            id(err.data)
            for err in reply.errors
            if err.code is FlowModFailedCode.TABLE_FULL
            and err.data is not None
        }
        admissible = [m for m in mods if id(m) not in overflow_ids]
        if not overflow_ids or len(admissible) == len(mods):
            return False, None  # not a capacity reject: retry verbatim
        overflow = [m for m in mods if id(m) in overflow_ids]
        if not admissible:
            # The whole batch is overflow; nothing to split out.
            return False, None
        self.table_full_splits += 1
        if submit(admissible):
            return False, overflow
        # The complement bounced too (channel dropped mid-split, a
        # second table filled): treat as nothing landed — the original
        # batch is retried whole, so no mod is silently forgotten.
        return False, None

    def _subscriber_of(
        self, src: "int | None", vlan: "int | None"
    ) -> "tuple[int, int] | None":
        if src is None or vlan is None:
            return None
        base = ip_to_int("10.0.0.0")
        if (src >> 24) != (base >> 24):
            return None
        ce = (src >> 16) & 0xFF
        user = (src & 0xFFFF) - 1
        if ce >= self.n_ce or not 0 <= user < self.users_per_ce:
            return None
        if vlan != gateway.ce_vlan(ce):
            return None
        return ce, user
