"""Flow-entry expiry: OpenFlow idle and hard timeouts.

The fast paths are never burdened with clock reads; instead an
:class:`ExpiryManager` polls the pipeline — the way production switches run
periodic expiry sweeps — comparing per-entry packet counters between ticks
to detect idleness, and wall-positions to detect hard expiry. Expired
entries are removed through the owning switch's ``apply_flow_mod`` so all
of its datapath invalidation/update machinery engages (ESWITCH recompiles
or incrementally updates the table; OVS flushes its caches).

Tracking is by **flow identity, not object identity**: entries are keyed
by their ``entry_id`` and re-resolved against the live pipeline on every
sweep, because the pipeline is free to swap the underlying
:class:`FlowEntry` objects between ticks (transactional rollbacks,
snapshot restores, a sharded engine's shadow). A tracked flow that no
longer resolves is simply dropped — never deleted by a stale match, which
could take out an unrelated entry that now occupies the same (match,
priority) slot.

When both timeouts are due on the same sweep, **hard wins**: the hard
timeout bounds the entry's total lifetime regardless of traffic
(OpenFlow 1.3 §5.5), so it takes precedence over idle expiry — and
activity observed on a sweep refreshes idleness *before* the idle check,
so a flow that was busy right up to its hard deadline still expires
``"hard"``.

Driving a :class:`~repro.parallel.ShardedESwitch`, the manager calls the
engine's ``sync_flow_stats()`` before each sweep, so idleness is judged
on the cross-shard counter totals rather than the shadow's stale view.

The clock is caller-supplied seconds (floats): simulations advance it
explicitly, deterministic tests included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.openflow.flow_entry import FlowEntry
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.pipeline import Pipeline


@dataclass
class _Tracked:
    table_id: int
    entry: FlowEntry  # refreshed every sweep; entry_id is the real key
    installed_at: float
    last_active: float
    last_packets: int


class ExpiryManager:
    """Polls a switch's pipeline and removes timed-out entries.

    Args:
        switch: anything with ``pipeline`` and ``apply_flow_mod`` (ESwitch,
            OvsSwitch, ShardedESwitch, or a bare Pipeline wrapper). If the
            switch exposes ``sync_flow_stats()`` (the sharded engine
            does), it is invoked before every sweep so counters reflect
            all shards.
        on_expired: optional callback ``(table_id, entry, reason)`` with
            reason ``"idle"`` or ``"hard"`` (e.g. to emit flow-removed
            messages to a controller).
    """

    def __init__(
        self,
        switch,
        on_expired: "Callable[[int, FlowEntry, str], None] | None" = None,
    ):
        self.switch = switch
        self.on_expired = on_expired
        self._tracked: dict[int, _Tracked] = {}
        self.expired_idle = 0
        self.expired_hard = 0
        self._now = 0.0

    @property
    def pipeline(self) -> Pipeline:
        """The switch's live pipeline (never cached: it may be rebuilt)."""
        return self.switch.pipeline

    def observe(self, now: float) -> None:
        """Register new timed entries and re-resolve tracked ones.

        Call after installing flows. Tracked entries whose objects were
        swapped (same ``entry_id``, different :class:`FlowEntry`) are
        re-bound to the live object; tracked ids that no longer resolve
        anywhere in the pipeline are dropped — their flow is already
        gone, and deleting by the stale object's (match, priority) could
        hit an unrelated entry that reused the slot.
        """
        self._now = max(self._now, now)
        live: dict[int, tuple[int, FlowEntry]] = {}
        for table in self.pipeline:
            for entry in table:
                if not (entry.idle_timeout or entry.hard_timeout):
                    continue
                live[entry.entry_id] = (table.table_id, entry)
                if entry.entry_id not in self._tracked:
                    self._tracked[entry.entry_id] = _Tracked(
                        table_id=table.table_id,
                        entry=entry,
                        installed_at=now,
                        last_active=now,
                        last_packets=entry.counters.packets,
                    )
        for entry_id in list(self._tracked):
            if entry_id not in live:
                # Removed out from under us (or its timeouts were
                # stripped): forget it, never delete by stale match.
                del self._tracked[entry_id]
                continue
            tracked = self._tracked[entry_id]
            table_id, entry = live[entry_id]
            if tracked.entry is not entry:
                tracked.entry = entry
                tracked.table_id = table_id
                if entry.counters.packets < tracked.last_packets:
                    # The live object carries reset counters; rebase the
                    # idle baseline without mistaking the drop for
                    # activity (activity only ever *increases* counts).
                    tracked.last_packets = entry.counters.packets

    def tick(self, now: float) -> list[tuple[int, FlowEntry, str]]:
        """Advance to ``now``; expire and remove due entries."""
        if now < self._now:
            raise ValueError("the clock cannot move backwards")
        sync = getattr(self.switch, "sync_flow_stats", None)
        if sync is not None:
            sync()  # sharded engine: judge idleness on cross-shard totals
        self.observe(now)
        self._now = now
        expired: list[tuple[int, FlowEntry, str]] = []
        for entry_id, tracked in list(self._tracked.items()):
            entry = tracked.entry  # re-resolved by observe() above
            # Counter progress since the last tick proves activity —
            # credited BEFORE the timeout checks, so a flow active this
            # sweep can only expire hard, never idle.
            if entry.counters.packets > tracked.last_packets:
                tracked.last_packets = entry.counters.packets
                tracked.last_active = now
            elif entry.counters.packets < tracked.last_packets:
                tracked.last_packets = entry.counters.packets  # reset, not activity
            reason = None
            # Hard before idle: when both are due the same sweep, the
            # lifetime bound outranks idleness (OpenFlow 1.3 §5.5).
            if entry.hard_timeout and now - tracked.installed_at >= entry.hard_timeout:
                reason = "hard"
            elif entry.idle_timeout and now - tracked.last_active >= entry.idle_timeout:
                reason = "idle"
            if reason is None:
                continue
            del self._tracked[entry_id]
            self.switch.apply_flow_mod(
                FlowMod(
                    FlowModCommand.DELETE,
                    tracked.table_id,
                    entry.match,
                    priority=entry.priority,
                    strict=True,  # expire exactly this rule, nothing else
                )
            )
            if reason == "idle":
                self.expired_idle += 1
            else:
                self.expired_hard += 1
            expired.append((tracked.table_id, entry, reason))
            if self.on_expired is not None:
                self.on_expired(tracked.table_id, entry, reason)
        return expired

    @property
    def tracked_count(self) -> int:
        return len(self._tracked)
