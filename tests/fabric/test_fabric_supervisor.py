"""The fabric supervisor: scoring, outage attribution, upgrades.

Health scores fold session + engine health into [0, 1]; outages and
resyncs become attributed events with degraded-time and convergence
windows; rolling upgrades walk the fabric behind epoch barriers and an
abort rolls every touched leaf back to the old epoch.
"""

import random

from repro.controller.channels import LossyChannel
from repro.fabric import (
    Fabric,
    FabricFaultPlan,
    FabricFaultSpec,
    FabricSupervisor,
    UPGRADE_MARKER_PORT,
    default_upgrade_mods,
)
from repro.fabric.supervisor import _inverse_mods
from repro.net.addresses import int_to_ip
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.packet import PacketBuilder
from repro.usecases import gateway


def reliable(role, name, index):
    return LossyChannel(loss=0.0, delay_s=1e-3, seed=9000 + index)


def make(n_leaves=2, faults=None, **kwargs):
    fabric = Fabric(
        n_leaves=n_leaves, n_spines=1, n_ce=max(4, n_leaves),
        users_per_ce=2, n_prefixes=32, channel_for=reliable, **kwargs,
    )
    armed = faults.arm(fabric) if faults is not None else None
    return fabric, FabricSupervisor(fabric, faults=armed)


def subscriber_pkt(ce, user, fib, rng):
    value, depth, _port = fib[rng.randrange(len(fib))]
    host_bits = 32 - depth
    dst = value | (rng.getrandbits(host_bits) if host_bits else 0)
    return (
        PacketBuilder(in_port=gateway.ACCESS_PORT)
        .eth()
        .vlan(vid=gateway.ce_vlan(ce))
        .ipv4(
            src=int_to_ip(gateway.private_ip(ce, user)),
            dst=int_to_ip(dst),
        )
        .tcp(src_port=1024 + rng.randrange(60000), dst_port=443)
        .build()
    )


class TestScoring:
    def test_healthy_fabric_scores_one(self):
        fabric, sup = make()
        with fabric:
            for _ in range(4):
                sup.tick(0.5)
            assert all(s == 1.0 for s in sup.health_scores().values())
            assert sup.degraded_leaves() == []

    def test_down_session_scores_zero_and_accrues_degraded_time(self):
        plan = FabricFaultPlan((
            FabricFaultSpec(at_s=1.0, target="leaf0", kind="blackout",
                            duration_s=4.0),
        ))
        fabric, sup = make(faults=plan)
        with fabric:
            declared = False
            for _ in range(12):
                sup.tick(0.5)
                if "leaf0" in sup.degraded_leaves():
                    declared = True
                    assert sup.health_scores()["leaf0"] == 0.0
            assert declared, "liveness never declared the blackout"
            status = sup.status["leaf0"]
            assert status.outages == 1
            assert status.degraded_time_s > 0.0
            assert sup.status["leaf1"].degraded_time_s == 0.0
            kinds = [(name, what) for _t, name, what in sup.events]
            assert ("leaf0", "outage") in kinds
            assert ("leaf0", "resync") in kinds

    def test_convergence_window_measured_by_workload(self):
        plan = FabricFaultPlan((
            FabricFaultSpec(at_s=1.0, target="leaf0", kind="blackout",
                            duration_s=3.0),
        ))
        fabric, sup = make(faults=plan)
        with fabric:
            for _ in range(12):
                sup.tick(0.5)
            assert sup.awaiting_convergence() == ["leaf0"]
            sup.tick(0.5)
            window = sup.note_converged("leaf0")
            assert window is not None and window > 0.0
            assert sup.status["leaf0"].convergence_s == window
            assert sup.awaiting_convergence() == []
            # Idempotent: no pending resync -> no window.
            assert sup.note_converged("leaf0") is None


class TestRollingUpgrade:
    def test_completes_and_is_verdict_invisible(self):
        fabric, sup = make()
        with fabric:
            rng = random.Random(3)
            pkts = [subscriber_pkt(0, u, fabric.fib, rng) for u in range(2)]
            fabric.inject("leaf0", pkts)  # admit some reactive state
            probe = [subscriber_pkt(0, u, fabric.fib, rng) for u in range(2)]
            before = [
                v.summary()
                for v in fabric.leaf("leaf0").switch.process_burst(
                    [p.copy() for p in probe]
                )
            ]
            report = sup.rolling_upgrade()
            assert report.completed
            assert report.epoch == sup.epoch == 1
            assert report.upgraded == [l.name for l in fabric.leaves]
            assert all(
                s.epoch == 1 for s in sup.status.values()
            )
            after = [
                v.summary()
                for v in fabric.leaf("leaf0").switch.process_burst(
                    [p.copy() for p in probe]
                )
            ]
            assert before == after
            # The marker rule is present at the new epoch's priority.
            marker = [
                e
                for e in fabric.leaf("leaf0").switch.pipeline
                .get_or_create(0).entries
                if e.match == Match(in_port=UPGRADE_MARKER_PORT)
            ]
            assert len(marker) == 1
            assert marker[0].priority == 2  # 1 + epoch

    def test_abort_rolls_back_every_touched_leaf(self):
        fabric, sup = make(n_leaves=3)
        with fabric:
            report = sup.rolling_upgrade(fail_refuse_on="leaf1")
            assert not report.completed
            assert report.aborted_at == "leaf1"
            assert "re-fuse failed" in report.abort_reason
            assert report.upgraded == ["leaf0"]
            # Newest-first rollback: the aborted leaf, then the
            # already-upgraded ones.
            assert report.rolled_back == ["leaf1", "leaf0"]
            assert sup.epoch == 0
            assert all(s.epoch == 0 for s in sup.status.values())
            assert sup.deadlocks == 0
            # No marker rule survives anywhere.
            for leaf in fabric.leaves:
                table = leaf.switch.pipeline.get_or_create(0)
                assert not [
                    e for e in table.entries
                    if e.match == Match(in_port=UPGRADE_MARKER_PORT)
                ]
            # And the fabric still fuses + serves on the old epoch.
            assert fabric.leaves[1].switch.warm()

    def test_dark_leaf_refuses_barrier_and_aborts(self):
        fabric, sup = make()
        with fabric:
            fabric.session_of("leaf0").disconnect()
            fabric.advance(10.0)  # liveness declares the outage
            report = sup.rolling_upgrade()
            assert not report.completed
            assert report.aborted_at == "leaf0"
            assert "barrier" in report.abort_reason
            assert sup.epoch == 0

    def test_upgrade_goes_through_the_leaf_session(self):
        fabric, sup = make()
        with fabric:
            sent_before = fabric.leaf("leaf0").session.health().sends
            assert sup.rolling_upgrade().completed
            assert fabric.leaf("leaf0").session.health().sends > sent_before

    def test_custom_mods_and_inverse(self):
        fabric, sup = make()
        with fabric:
            leaf = fabric.leaf("leaf0")
            mods = [
                FlowMod(
                    FlowModCommand.ADD, 0, Match(in_port=4242),
                    priority=7, instructions=(),
                )
            ]
            inverse = _inverse_mods(mods, leaf.switch.pipeline)
            assert len(inverse) == 1
            assert inverse[0].command is FlowModCommand.DELETE
            assert inverse[0].strict

            report = sup.rolling_upgrade(mods_for_leaf=lambda _leaf: mods)
            assert report.completed
            table = leaf.switch.pipeline.get_or_create(0)
            assert [
                e for e in table.entries if e.match == Match(in_port=4242)
            ]

    def test_telemetry_shape(self):
        fabric, sup = make()
        with fabric:
            sup.tick(0.5)
            sup.rolling_upgrade()
            doc = sup.telemetry()
            assert doc["epoch"] == 1
            assert doc["deadlocks"] == 0
            assert set(doc["leaves"]) == {l.name for l in fabric.leaves}
            assert any("epoch 1" in e[2] for e in doc["events"])


class TestDefaultUpgradeMods:
    def test_marker_is_verdict_invisible_port(self):
        mods = default_upgrade_mods(3)
        assert len(mods) == 1
        assert mods[0].match == Match(in_port=UPGRADE_MARKER_PORT)
        assert mods[0].priority == 4
        assert UPGRADE_MARKER_PORT not in (
            gateway.ACCESS_PORT, gateway.NETWORK_PORT,
        )
