"""Ablation: IO burst size (the DPDK batching the substrate relies on).

Section 4.2 credits the DPDK substrate's "batch processing" (and OVS its
"extensive batching"). This bench sweeps the burst size around the
DPDK-typical 32 by driving the switch's real ``process_burst`` path: the
per-burst framework cost (PMD poll, doorbells) is charged once per burst
and amortizes across it, so tiny bursts crater throughput while growth
beyond ~32 shows diminishing returns — the classic throughput/latency knob.
"""

from figshared import publish, render_table
from repro.core import ESwitch
from repro.traffic import measure
from repro.usecases import l2

BATCH_AXIS = (1, 4, 8, 32, 128, 256)


def test_ablation_batching(benchmark):
    _p, macs = l2.build(100)
    flows = l2.traffic(macs, 200)
    n_packets = 6_000

    rows = []
    rates = {}
    for batch in BATCH_AXIS:
        sw = ESwitch.from_pipeline(l2.build(100)[0])
        m = measure(
            sw,
            flows,
            n_packets=n_packets,
            warmup=1_000,
            batch_size=batch,
        )
        rates[batch] = m.pps
        # The measurement went through the real burst layer, not a
        # per-packet cost fudge: telemetry shows the right burst count and
        # every full burst had exactly `batch` packets.
        burst = m.extra["burst"]
        assert burst["bursts"] == -(-n_packets // batch)
        assert sw.burst_stats.histogram[batch] >= n_packets // batch
        rows.append(
            (
                batch,
                f"{m.mpps:.2f}",
                f"{m.cycles_per_packet:.0f}",
                f"{burst['cycles_per_burst']:.0f}",
            )
        )
    publish(
        "ablation_batching",
        render_table(
            "Ablation: IO burst size vs throughput (calibration burst = 32)",
            ("burst", "Mpps", "cycles/pkt", "cycles/burst"),
            rows,
        ),
    )

    # Monotone: bigger bursts never hurt throughput.
    ordered = [rates[b] for b in BATCH_AXIS]
    assert all(a <= b * 1.001 for a, b in zip(ordered, ordered[1:]))
    # Unbatched IO is crippling (the reason every fast datapath bursts).
    assert rates[1] < rates[32] * 0.45
    # Diminishing returns past the calibration burst.
    assert rates[256] < rates[32] * 1.15

    sw = ESwitch.from_pipeline(l2.build(100)[0])
    counter = iter(range(10**9))
    benchmark(
        lambda: sw.process_burst(
            [flows[(next(counter) * 32 + j) % 200].copy() for j in range(32)]
        )
    )
