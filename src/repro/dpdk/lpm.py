"""DIR-24-8 longest prefix match — a reimplementation of DPDK's ``rte_lpm``.

The structure holds a direct-indexed table over the top 24 address bits
(``tbl24``) plus overflow groups of 256 entries for deeper prefixes
(``tbl8``). A lookup costs one memory access for prefixes up to /24 and two
for longer ones — exactly the 1-or-2 access profile the paper's LPM cost
atom charges (``13 + 2*Lx`` cycles, Fig. 20).

Incremental add/delete follow the DPDK algorithm: each entry remembers the
depth of the rule that wrote it, so a new rule only overwrites entries
written by shorter prefixes, and deletion substitutes the next-shorter
covering rule.

The tbl8 pool grows geometrically on demand (a million-prefix FIB holds
thousands of /25+ groups, far past the historical 256-group default), with
a lowest-first free-list allocator so group ids — and therefore the cache
line ids the cost model sees — stay deterministic under churn.
``LpmFullError`` is raised only when the caller set an explicit
``max_tbl8_groups`` ceiling. Bulk add/delete vectorize same-depth rule
batches with numpy, and ``compact()`` renumbers groups to the low end so
long-running churn does not fragment the pool.

Entry encoding (numpy ``int32``): ``0`` invalid, ``> 0`` next hop + 1,
``< 0`` extended — ``-(tbl8 group + 1)``.
"""

from __future__ import annotations

import heapq

import numpy as np

TBL8_GROUP_SIZE = 256
#: 4-byte entries per 64-byte cache line — for cache-simulator line ids.
ENTRIES_PER_LINE = 16
#: Initial tbl8 pool capacity when no ceiling is set (grows geometrically).
DEFAULT_TBL8_GROUPS = 256
#: Keep vectorized index batches under this many entries (memory bound).
_BULK_CHUNK = 1 << 22


class LpmFullError(RuntimeError):
    """No free tbl8 groups remain under an explicit user-set ceiling."""


class Dir24_8Lpm:
    """DIR-24-8 LPM table over 32-bit keys.

    Args:
        max_tbl8_groups: explicit ceiling on overflow groups for /25+
            prefixes — exceeding it raises :class:`LpmFullError`. ``None``
            (the default) starts at :data:`DEFAULT_TBL8_GROUPS` and grows
            the pool geometrically without bound.
    """

    def __init__(self, max_tbl8_groups: "int | None" = None):
        if max_tbl8_groups is not None and max_tbl8_groups < 1:
            raise ValueError("max_tbl8_groups must be >= 1")
        self._max_tbl8_groups = max_tbl8_groups
        cap = max_tbl8_groups if max_tbl8_groups is not None else DEFAULT_TBL8_GROUPS
        self._tbl24 = np.zeros(1 << 24, dtype=np.int32)
        self._tbl24_depth = np.zeros(1 << 24, dtype=np.uint8)
        self._tbl8 = np.zeros(cap * TBL8_GROUP_SIZE, dtype=np.int32)
        self._tbl8_depth = np.zeros(cap * TBL8_GROUP_SIZE, dtype=np.uint8)
        self._tbl8_used = [False] * cap
        self._tbl8_free: list[int] = list(range(cap))  # min-heap: lowest first
        self._rules: dict[tuple[int, int], int] = {}  # (prefix, depth) -> next hop
        self.tbl8_grow_events = 0

    # -- rule management ----------------------------------------------------

    def add(self, ip: int, depth: int, next_hop: int) -> None:
        """Insert (or update) the rule ``ip/depth -> next_hop``."""
        self._check(ip, depth)
        if next_hop < 0:
            raise ValueError("next hop must be non-negative")
        prefix = self._prefix(ip, depth)
        self._rules[(prefix, depth)] = next_hop
        if depth <= 24:
            self._add_depth_small(prefix, depth, next_hop)
        else:
            self._add_depth_big(prefix, depth, next_hop)

    def add_bulk(self, rules) -> None:
        """Insert many ``(ip, depth, next_hop)`` rules at once.

        Equivalent to adding every rule individually (in any order — the
        depth guard makes the final table order-independent; exact
        duplicate ``(prefix, depth)`` rules resolve last-wins). Same-depth
        batches of /24-and-shorter prefixes are disjoint ranges, so their
        tbl24 writes vectorize across rules in numpy.
        """
        deduped: dict[tuple[int, int], int] = {}
        for ip, depth, next_hop in rules:
            self._check(ip, depth)
            if next_hop < 0:
                raise ValueError("next hop must be non-negative")
            deduped[(self._prefix(ip, depth), depth)] = next_hop
        by_depth: dict[int, list[tuple[int, int]]] = {}
        for (prefix, depth), next_hop in deduped.items():
            by_depth.setdefault(depth, []).append((prefix, next_hop))
        for depth in sorted(by_depth):
            pairs = by_depth[depth]
            for prefix, next_hop in pairs:
                self._rules[(prefix, depth)] = next_hop
            if depth > 24:
                for prefix, next_hop in pairs:
                    self._add_depth_big(prefix, depth, next_hop)
            elif len(pairs) < 32:
                for prefix, next_hop in pairs:
                    self._add_depth_small(prefix, depth, next_hop)
            else:
                self._add_small_batch(pairs, depth)

    def delete(self, ip: int, depth: int) -> bool:
        """Remove the rule ``ip/depth``. Returns False if it did not exist."""
        self._check(ip, depth)
        prefix = self._prefix(ip, depth)
        if (prefix, depth) not in self._rules:
            return False
        del self._rules[(prefix, depth)]
        parent = self._find_parent(prefix, depth)
        if parent is None:
            sub_hop, sub_depth = 0, 0  # invalidate
            sub_valid = False
        else:
            (_, sub_depth), sub_hop = parent
            sub_valid = True
        if depth <= 24:
            self._delete_depth_small(prefix, depth, sub_valid, sub_hop, sub_depth)
        else:
            self._delete_depth_big(prefix, depth, sub_valid, sub_hop, sub_depth)
        return True

    def delete_bulk(self, rules) -> int:
        """Remove many ``(ip, depth)`` rules at once; returns the count
        actually removed.

        All removals leave the rule set first, so covering rules deleted
        in the same batch never serve as substitutes — the result matches
        any sequential ordering of the individual deletes.
        """
        batch: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for ip, depth in rules:
            self._check(ip, depth)
            key = (self._prefix(ip, depth), depth)
            if key in self._rules and key not in seen:
                seen.add(key)
                batch.append(key)
        for key in batch:
            del self._rules[key]
        for prefix, depth in sorted(batch, key=lambda pd: pd[1]):
            parent = self._find_parent(prefix, depth)
            if parent is None:
                sub_valid, sub_hop, sub_depth = False, 0, 0
            else:
                (_, sub_depth), sub_hop = parent
                sub_valid = True
            if depth <= 24:
                self._delete_depth_small(prefix, depth, sub_valid, sub_hop, sub_depth)
            else:
                self._delete_depth_big(prefix, depth, sub_valid, sub_hop, sub_depth)
        return len(batch)

    def get_rule(self, ip: int, depth: int) -> "int | None":
        """The next hop stored for exactly ``ip/depth`` (no LPM semantics)."""
        self._check(ip, depth)
        return self._rules.get((self._prefix(ip, depth), depth))

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def rules(self) -> dict[tuple[int, int], int]:
        """A copy of the rule set as ``{(prefix, depth): next_hop}``."""
        return dict(self._rules)

    @property
    def tbl8_capacity(self) -> int:
        """Current tbl8 pool capacity in groups."""
        return len(self._tbl8_used)

    @property
    def tbl8_groups_used(self) -> int:
        return sum(self._tbl8_used)

    def footprint(self) -> dict:
        """Resident bytes of the lookup structure (numpy arrays are exact;
        the rule dict is estimated at ~100 bytes/rule)."""
        tbl24_bytes = self._tbl24.nbytes + self._tbl24_depth.nbytes
        tbl8_bytes = self._tbl8.nbytes + self._tbl8_depth.nbytes
        return {
            "kind": "lpm",
            "rules": len(self._rules),
            "tbl24_bytes": tbl24_bytes,
            "tbl8_bytes": tbl8_bytes,
            "tbl8_groups": self.tbl8_groups_used,
            "tbl8_capacity": self.tbl8_capacity,
            "bytes": tbl24_bytes + tbl8_bytes + len(self._rules) * 100,
        }

    def compact(self) -> int:
        """Renumber used tbl8 groups to the low end and shrink the pool.

        Long-running churn allocates and recycles groups; compaction keeps
        the pool dense so footprint tracks live state. Returns the number
        of capacity groups released. Lookups stay valid throughout (tbl24
        pointers are rewritten in one vectorized pass).
        """
        cap = len(self._tbl8_used)
        used = [g for g in range(cap) if self._tbl8_used[g]]
        moved = [(old, new) for new, old in enumerate(used) if old != new]
        for old, new in moved:  # new < old always: ascending copy is safe
            ob, nb = old * TBL8_GROUP_SIZE, new * TBL8_GROUP_SIZE
            self._tbl8[nb : nb + TBL8_GROUP_SIZE] = self._tbl8[ob : ob + TBL8_GROUP_SIZE]
            self._tbl8_depth[nb : nb + TBL8_GROUP_SIZE] = self._tbl8_depth[
                ob : ob + TBL8_GROUP_SIZE
            ]
        if moved:
            lut = np.arange(cap, dtype=np.int32)
            for old, new in moved:
                lut[old] = new
            ext = self._tbl24 < 0
            self._tbl24[ext] = -(lut[-self._tbl24[ext] - 1] + 1)
        if self._max_tbl8_groups is not None:
            new_cap = cap  # explicit ceilings keep their full allocation
        else:
            new_cap = DEFAULT_TBL8_GROUPS
            while new_cap < len(used):
                new_cap *= 2
        if new_cap != cap:
            self._tbl8 = self._tbl8[: new_cap * TBL8_GROUP_SIZE].copy()
            self._tbl8_depth = self._tbl8_depth[: new_cap * TBL8_GROUP_SIZE].copy()
        tail = self._tbl8[len(used) * TBL8_GROUP_SIZE :]
        tail[:] = 0
        self._tbl8_depth[len(used) * TBL8_GROUP_SIZE :] = 0
        self._tbl8_used = [True] * len(used) + [False] * (new_cap - len(used))
        self._tbl8_free = list(range(len(used), new_cap))
        heapq.heapify(self._tbl8_free)
        return cap - new_cap

    # -- lookup ---------------------------------------------------------------

    def lookup(self, ip: int) -> "int | None":
        """Longest-prefix match; returns the next hop or None."""
        entry = int(self._tbl24[ip >> 8])
        if entry > 0:
            return entry - 1
        if entry == 0:
            return None
        group = -entry - 1
        sub = int(self._tbl8[group * TBL8_GROUP_SIZE + (ip & 0xFF)])
        return sub - 1 if sub > 0 else None

    def lookup_traced(self, ip: int) -> tuple["int | None", tuple[int, ...]]:
        """Lookup plus the abstract cache-line ids it touched.

        Line-id namespaces: tbl24 lines are non-negative, tbl8 lines are
        offset past the tbl24 range — disjoint addresses for the cache
        simulator.
        """
        idx24 = ip >> 8
        lines = [idx24 // ENTRIES_PER_LINE]
        entry = int(self._tbl24[idx24])
        if entry > 0:
            return entry - 1, (lines[0],)
        if entry == 0:
            return None, (lines[0],)
        group = -entry - 1
        idx8 = group * TBL8_GROUP_SIZE + (ip & 0xFF)
        tbl8_line = (1 << 24) // ENTRIES_PER_LINE + idx8 // ENTRIES_PER_LINE
        sub = int(self._tbl8[idx8])
        return (sub - 1 if sub > 0 else None), (lines[0], tbl8_line)

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _check(ip: int, depth: int) -> None:
        if not 0 <= ip < (1 << 32):
            raise ValueError(f"IPv4 key out of range: {ip:#x}")
        if not 1 <= depth <= 32:
            raise ValueError(f"depth out of range: {depth}")

    @staticmethod
    def _prefix(ip: int, depth: int) -> int:
        mask = ((1 << depth) - 1) << (32 - depth)
        return ip & mask

    def _find_parent(self, prefix: int, depth: int) -> "tuple[tuple[int, int], int] | None":
        """The longest remaining rule strictly shorter than ``depth`` covering it."""
        for d in range(depth - 1, 0, -1):
            candidate = self._prefix(prefix, d)
            hop = self._rules.get((candidate, d))
            if hop is not None:
                return (candidate, d), hop
        return None

    def _add_depth_small(self, prefix: int, depth: int, next_hop: int) -> None:
        start = prefix >> 8
        count = 1 << (24 - depth)
        t24 = self._tbl24[start : start + count]
        d24 = self._tbl24_depth[start : start + count]
        # Extended entries (rare) are walked one by one; the rest vectorize.
        for off in np.nonzero(t24 < 0)[0]:
            group = -int(t24[off]) - 1
            base = group * TBL8_GROUP_SIZE
            sel = self._tbl8_depth[base : base + TBL8_GROUP_SIZE] <= depth
            self._tbl8[base : base + TBL8_GROUP_SIZE][sel] = next_hop + 1
            self._tbl8_depth[base : base + TBL8_GROUP_SIZE][sel] = depth
        sel24 = (t24 >= 0) & (d24 <= depth)
        t24[sel24] = next_hop + 1
        d24[sel24] = depth

    def _add_small_batch(self, pairs: "list[tuple[int, int]]", depth: int) -> None:
        """Vectorized same-depth (≤ /24) insertion across disjoint ranges."""
        count = 1 << (24 - depth)
        per_chunk = max(1, _BULK_CHUNK // count)
        offsets = np.arange(count, dtype=np.int64)
        for lo in range(0, len(pairs), per_chunk):
            chunk = pairs[lo : lo + per_chunk]
            starts = np.array([p >> 8 for p, _ in chunk], dtype=np.int64)
            vals = np.array([h + 1 for _, h in chunk], dtype=np.int32)
            idx = (starts[:, None] + offsets).reshape(-1)
            rep = np.repeat(vals, count)
            t24v = self._tbl24[idx]
            ext = t24v < 0
            if ext.any():
                for pos in np.nonzero(ext)[0]:
                    group = -int(t24v[pos]) - 1
                    base = group * TBL8_GROUP_SIZE
                    sel = self._tbl8_depth[base : base + TBL8_GROUP_SIZE] <= depth
                    self._tbl8[base : base + TBL8_GROUP_SIZE][sel] = int(rep[pos])
                    self._tbl8_depth[base : base + TBL8_GROUP_SIZE][sel] = depth
            sel = (t24v >= 0) & (self._tbl24_depth[idx] <= depth)
            tgt = idx[sel]
            self._tbl24[tgt] = rep[sel]
            self._tbl24_depth[tgt] = depth

    def _add_depth_big(self, prefix: int, depth: int, next_hop: int) -> None:
        idx24 = prefix >> 8
        entry = int(self._tbl24[idx24])
        if entry >= 0:
            group = self._alloc_tbl8()
            base = group * TBL8_GROUP_SIZE
            # Seed the group with the shallower tbl24 entry it replaces.
            self._tbl8[base : base + TBL8_GROUP_SIZE] = entry
            self._tbl8_depth[base : base + TBL8_GROUP_SIZE] = (
                self._tbl24_depth[idx24] if entry > 0 else 0
            )
            self._tbl24[idx24] = -(group + 1)
            self._tbl24_depth[idx24] = 0
        else:
            group = -entry - 1
            base = group * TBL8_GROUP_SIZE
        low = prefix & 0xFF
        count = 1 << (32 - depth)
        sel = self._tbl8_depth[base + low : base + low + count] <= depth
        self._tbl8[base + low : base + low + count][sel] = next_hop + 1
        self._tbl8_depth[base + low : base + low + count][sel] = depth

    def _delete_depth_small(
        self, prefix: int, depth: int, sub_valid: bool, sub_hop: int, sub_depth: int
    ) -> None:
        start = prefix >> 8
        count = 1 << (24 - depth)
        new24 = sub_hop + 1 if sub_valid else 0
        t24 = self._tbl24[start : start + count]
        d24 = self._tbl24_depth[start : start + count]
        for off in np.nonzero(t24 < 0)[0]:
            group = -int(t24[off]) - 1
            base = group * TBL8_GROUP_SIZE
            sel = self._tbl8_depth[base : base + TBL8_GROUP_SIZE] == depth
            self._tbl8[base : base + TBL8_GROUP_SIZE][sel] = new24
            self._tbl8_depth[base : base + TBL8_GROUP_SIZE][sel] = sub_depth
            self._maybe_recycle(start + int(off), group)
        sel24 = (t24 >= 0) & (d24 == depth)
        t24[sel24] = new24
        d24[sel24] = sub_depth

    def _delete_depth_big(
        self, prefix: int, depth: int, sub_valid: bool, sub_hop: int, sub_depth: int
    ) -> None:
        idx24 = prefix >> 8
        entry = int(self._tbl24[idx24])
        if entry >= 0:
            return  # rule was never materialized (shouldn't happen)
        group = -entry - 1
        base = group * TBL8_GROUP_SIZE
        low = prefix & 0xFF
        count = 1 << (32 - depth)
        sel = self._tbl8_depth[base + low : base + low + count] == depth
        self._tbl8[base + low : base + low + count][sel] = sub_hop + 1 if sub_valid else 0
        self._tbl8_depth[base + low : base + low + count][sel] = sub_depth
        self._maybe_recycle(idx24, group)

    def _alloc_tbl8(self) -> int:
        if not self._tbl8_free:
            if self._max_tbl8_groups is not None:
                raise LpmFullError("out of tbl8 groups")
            self._grow_tbl8()
        group = heapq.heappop(self._tbl8_free)
        self._tbl8_used[group] = True
        return group

    def _grow_tbl8(self) -> None:
        """Double the tbl8 pool (unbounded mode only)."""
        cap = len(self._tbl8_used)
        new_cap = max(1, cap) * 2
        grown = np.zeros(new_cap * TBL8_GROUP_SIZE, dtype=np.int32)
        grown[: cap * TBL8_GROUP_SIZE] = self._tbl8
        self._tbl8 = grown
        grown_d = np.zeros(new_cap * TBL8_GROUP_SIZE, dtype=np.uint8)
        grown_d[: cap * TBL8_GROUP_SIZE] = self._tbl8_depth
        self._tbl8_depth = grown_d
        self._tbl8_used.extend([False] * (new_cap - cap))
        for group in range(cap, new_cap):
            heapq.heappush(self._tbl8_free, group)
        self.tbl8_grow_events += 1

    def _maybe_recycle(self, idx24: int, group: int) -> None:
        """Collapse a tbl8 group back into tbl24 if it became uniform."""
        base = group * TBL8_GROUP_SIZE
        values = self._tbl8[base : base + TBL8_GROUP_SIZE]
        depths = self._tbl8_depth[base : base + TBL8_GROUP_SIZE]
        if not bool((depths > 24).any()):
            first = int(values[0])
            if bool((values == first).all()) and bool((depths == depths[0]).all()):
                self._tbl24[idx24] = first
                self._tbl24_depth[idx24] = int(depths[0])
                values[:] = 0
                depths[:] = 0
                if self._tbl8_used[group]:
                    self._tbl8_used[group] = False
                    heapq.heappush(self._tbl8_free, group)
