"""Fig. 15: last-level CPU cache misses per packet (gateway use case).

Paper: ESWITCH "performs very few last-level CPU cache misses (roughly one
for every 10th packet)" while OVS "makes excess out-of-cache memory
references" once processing leaves the microflow cache — up to ~10 misses
per packet.
"""

from figshared import FLOW_AXIS, fmt_flows, publish, render_table, sweep_flows
from repro.core import ESwitch
from repro.ovs import OvsSwitch
from repro.usecases import gateway

N_CE, USERS, PREFIXES = 10, 20, 10_000


def build():
    return gateway.build(n_ce=N_CE, users_per_ce=USERS, n_prefixes=PREFIXES)[0]


def test_fig15_llc_misses(benchmark):
    _p, fib = gateway.build(n_ce=N_CE, users_per_ce=USERS, n_prefixes=PREFIXES)
    make_flows = lambda n: gateway.traffic(fib, n, n_ce=N_CE, users_per_ce=USERS)

    es = sweep_flows(lambda: ESwitch.from_pipeline(build()), make_flows)
    ovs = sweep_flows(lambda: OvsSwitch(build()), make_flows)

    rows = [
        (
            fmt_flows(n),
            f"{es[i][1].llc_misses_per_packet:.3f}",
            f"{ovs[i][1].llc_misses_per_packet:.3f}",
        )
        for i, n in enumerate(FLOW_AXIS)
    ]
    publish(
        "fig15_llc",
        render_table(
            "Fig. 15: LLC misses per packet (paper: ES ~0.1, OVS up to ~10)",
            ("flows", "ES", "OVS"),
            rows,
        ),
    )

    es_misses = [m.llc_misses_per_packet for _f, m in es]
    ovs_misses = [m.llc_misses_per_packet for _f, m in ovs]
    # ESWITCH stays near-zero at every scale (working set = the tables).
    assert max(es_misses) < 1.0
    assert es_misses[0] < 0.05
    # OVS misses grow with the flow set and dwarf ESWITCH's at scale.
    assert ovs_misses[-1] > 2.0
    assert ovs_misses[-1] > es_misses[-1] * 5
    # Both are cache-resident when everything fits the microflow cache.
    assert ovs_misses[0] < 0.1

    sw = ESwitch.from_pipeline(build())
    flows = make_flows(64)
    counter = iter(range(10**9))
    benchmark(lambda: sw.process(flows[next(counter) % 64].copy()))
