"""Packet substrate: header classes, the Packet container, and parsers."""

from repro.packet.headers import (
    ARP,
    Ethernet,
    ICMP,
    IPv4,
    TCP,
    UDP,
    Vlan,
    ETH_TYPE_ARP,
    ETH_TYPE_IPV4,
    ETH_TYPE_VLAN,
    IP_PROTO_ICMP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
)
from repro.packet.packet import Packet
from repro.packet.parser import (
    PROTO_ARP,
    PROTO_ETH,
    PROTO_ICMP,
    PROTO_IPV4,
    PROTO_TCP,
    PROTO_UDP,
    PROTO_VLAN,
    ParsedPacket,
    parse,
)
from repro.packet.builder import PacketBuilder

__all__ = [
    "ARP",
    "Ethernet",
    "ICMP",
    "IPv4",
    "TCP",
    "UDP",
    "Vlan",
    "ETH_TYPE_ARP",
    "ETH_TYPE_IPV4",
    "ETH_TYPE_VLAN",
    "IP_PROTO_ICMP",
    "IP_PROTO_TCP",
    "IP_PROTO_UDP",
    "Packet",
    "ParsedPacket",
    "parse",
    "PacketBuilder",
    "PROTO_ARP",
    "PROTO_ETH",
    "PROTO_ICMP",
    "PROTO_IPV4",
    "PROTO_TCP",
    "PROTO_UDP",
    "PROTO_VLAN",
]
