"""OpenFlow 1.3 substrate: fields, matches, actions, tables, pipelines."""

from repro.openflow.fields import FIELDS, FieldDef, field_by_name
from repro.openflow.match import Match
from repro.openflow.actions import (
    Action,
    ActionSet,
    Controller,
    DecTtl,
    Drop,
    Flood,
    Output,
    PopVlan,
    PushVlan,
    SetField,
)
from repro.openflow.instructions import (
    ApplyActions,
    ClearActions,
    GotoTable,
    Instruction,
    WriteActions,
    WriteMetadata,
)
from repro.openflow.groups import (
    Bucket,
    Group,
    GroupAction,
    GroupTable,
    GroupType,
)
from repro.openflow.meters import (
    Meter,
    MeterInstruction,
    MeterTable,
    SimClock,
)
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable, TableMissPolicy
from repro.openflow.pipeline import Pipeline, Verdict
from repro.openflow.messages import FlowMod, FlowModCommand, PacketIn, PacketOut

__all__ = [
    "FIELDS",
    "FieldDef",
    "field_by_name",
    "Match",
    "Action",
    "ActionSet",
    "Controller",
    "DecTtl",
    "Drop",
    "Flood",
    "Output",
    "PopVlan",
    "PushVlan",
    "SetField",
    "ApplyActions",
    "ClearActions",
    "GotoTable",
    "Instruction",
    "WriteActions",
    "WriteMetadata",
    "Bucket",
    "Group",
    "GroupAction",
    "GroupTable",
    "GroupType",
    "Meter",
    "MeterInstruction",
    "MeterTable",
    "SimClock",
    "FlowEntry",
    "FlowTable",
    "TableMissPolicy",
    "Pipeline",
    "Verdict",
    "FlowMod",
    "FlowModCommand",
    "PacketIn",
    "PacketOut",
]
