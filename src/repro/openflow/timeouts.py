"""Flow-entry expiry: OpenFlow idle and hard timeouts.

The fast paths are never burdened with clock reads; instead an
:class:`ExpiryManager` polls the pipeline — the way production switches run
periodic expiry sweeps — comparing per-entry packet counters between ticks
to detect idleness, and wall-positions to detect hard expiry. Expired
entries are removed through the owning switch's ``apply_flow_mod`` so all
of its datapath invalidation/update machinery engages (ESWITCH recompiles
or incrementally updates the table; OVS flushes its caches).

Tracking is by **flow identity, not object identity**: entries are keyed
by their ``entry_id`` and re-resolved against the live pipeline whenever a
table changes, because the pipeline is free to swap the underlying
:class:`FlowEntry` objects between ticks (transactional rollbacks,
snapshot restores, a sharded engine's shadow). A tracked flow that no
longer resolves is simply dropped — never deleted by a stale match, which
could take out an unrelated entry that now occupies the same (match,
priority) slot.

Two structures keep the sweep off the million-flow wall:

* **Version-gated observation.** :meth:`ExpiryManager.observe` rescans a
  table only when its ``(version, resyncs)`` token moved since the last
  sweep, and then reads :meth:`~repro.openflow.flow_table.FlowTable.\
timed_entries` — O(timed entries of changed tables), not O(all flows in
  the pipeline) as the previous full-pipeline walk was. ``resyncs`` is in
  the token because wholesale ``_entries`` swaps may skip the version
  bump; touching ``len(table)`` first forces the table's staleness guard
  so such a swap is always detected.
* **A deadline heap.** Each tracked flow carries its next decisive
  instant — ``min(installed_at + hard, last_active + idle)`` — in a lazy
  min-heap of ``(deadline, seq, entry_id)`` nodes. A tick pops only the
  due prefix; refreshed deadlines simply push a new node and the stale
  one is discarded on pop (its deadline no longer equals the flow's
  ``next_deadline``). Expiry work is O(expiring), not O(tracked).

One pass per tick does stay O(idle-tracked): comparing each flow's packet
counter against the last sweep. That is load-bearing semantics, not a
leftover — activity must be credited *at the tick that observes it*, so
a flow busy at tick 15 with a 10 s idle timeout expires at 25, not at
whenever a later pop happens to look. The compare is two int reads per
flow; the heap is what removes the per-tick deadline arithmetic and the
expiry scan.

When both timeouts are due on the same sweep, **hard wins**: the hard
timeout bounds the entry's total lifetime regardless of traffic
(OpenFlow 1.3 §5.5), so it takes precedence over idle expiry — and
activity observed on a sweep refreshes idleness *before* the idle check,
so a flow that was busy right up to its hard deadline still expires
``"hard"``.

Driving a :class:`~repro.parallel.ShardedESwitch`, the manager calls the
engine's ``sync_flow_stats()`` before each sweep, so idleness is judged
on the cross-shard counter totals rather than the shadow's stale view.

The clock is caller-supplied seconds (floats): simulations advance it
explicitly, deterministic tests included.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

from repro.openflow.flow_entry import FlowEntry
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.pipeline import Pipeline

_INF = float("inf")


class PipelineAdapter:
    """Minimal switch façade over a bare :class:`Pipeline`.

    :class:`ExpiryManager` drives anything with ``pipeline`` and
    ``apply_flow_mod``; this adapter supplies exactly that for a raw
    pipeline with no datapath attached — logical-table semantics only
    (the differential fuzzer's reference interpreter ticks through one).
    """

    def __init__(self, pipeline: Pipeline):
        self.pipeline = pipeline

    def apply_flow_mod(self, mod: FlowMod) -> None:
        table = self.pipeline.get_or_create(mod.table_id)
        if mod.command is FlowModCommand.DELETE:
            table.remove(mod.match, mod.priority if mod.strict else None)
        else:
            table.add(mod.to_entry())


@dataclass
class _Tracked:
    table_id: int
    entry: FlowEntry  # re-resolved on table change; entry_id is the key
    installed_at: float
    last_active: float
    last_packets: int
    #: the exact deadline of this flow's current heap node; a popped node
    #: whose deadline differs is stale and is discarded.
    next_deadline: float
    #: insertion order — expiry reporting stays in tracking order even
    #: though the heap yields due flows deadline-first.
    seq: int


class ExpiryManager:
    """Polls a switch's pipeline and removes timed-out entries.

    Args:
        switch: anything with ``pipeline`` and ``apply_flow_mod`` (ESwitch,
            OvsSwitch, ShardedESwitch, or a bare Pipeline wrapper). If the
            switch exposes ``sync_flow_stats()`` (the sharded engine
            does), it is invoked before every sweep so counters reflect
            all shards.
        on_expired: optional callback ``(table_id, entry, reason)`` with
            reason ``"idle"`` or ``"hard"`` (e.g. to emit flow-removed
            messages to a controller).
    """

    def __init__(
        self,
        switch,
        on_expired: "Callable[[int, FlowEntry, str], None] | None" = None,
    ):
        self.switch = switch
        self.on_expired = on_expired
        self._tracked: dict[int, _Tracked] = {}
        #: (deadline, seq, entry_id) min-heap; lazily pruned.
        self._heap: list[tuple[float, int, int]] = []
        #: per-table (version, resyncs) as of the last rescan.
        self._table_tokens: dict[int, tuple[int, int]] = {}
        self._seq = 0
        self.expired_idle = 0
        self.expired_hard = 0
        self._now = 0.0

    @property
    def pipeline(self) -> Pipeline:
        """The switch's live pipeline (never cached: it may be rebuilt)."""
        return self.switch.pipeline

    # -- deadline bookkeeping -------------------------------------------------

    def _deadline_of(self, tracked: _Tracked) -> float:
        entry = tracked.entry
        deadline = _INF
        if entry.hard_timeout:
            deadline = tracked.installed_at + entry.hard_timeout
        if entry.idle_timeout:
            idle_at = tracked.last_active + entry.idle_timeout
            if idle_at < deadline:
                deadline = idle_at
        return deadline

    def _schedule(self, entry_id: int, tracked: _Tracked) -> None:
        deadline = self._deadline_of(tracked)
        if deadline != tracked.next_deadline or deadline is _INF:
            tracked.next_deadline = deadline
            if deadline != _INF:
                heapq.heappush(self._heap, (deadline, tracked.seq, entry_id))

    # -- observation ----------------------------------------------------------

    def observe(self, now: float) -> None:
        """Register new timed entries and re-resolve tracked ones.

        Call after installing flows. Only tables whose ``(version,
        resyncs)`` token moved since the last sweep are rescanned — and
        the rescan reads the table's timed-entry index, so the cost is
        O(timed entries of changed tables). Tracked entries whose objects
        were swapped (same ``entry_id``, different :class:`FlowEntry`)
        are re-bound to the live object; tracked ids that no longer
        resolve in their table are dropped — their flow is already gone,
        and deleting by the stale object's (match, priority) could hit an
        unrelated entry that now owns the slot.
        """
        self._now = max(self._now, now)
        tracked_map = self._tracked
        tokens = self._table_tokens
        present: set[int] = set()
        for table in self.pipeline:
            tid = table.table_id
            present.add(tid)
            len(table)  # force the staleness guard: unannounced swaps
            # land in ``resyncs`` before the token is read.
            token = (table.version, table.resyncs)
            if tokens.get(tid) == token:
                continue
            tokens[tid] = token
            seen: set[int] = set()
            for entry in table.timed_entries():
                entry_id = entry.entry_id
                seen.add(entry_id)
                tracked = tracked_map.get(entry_id)
                if tracked is None:
                    self._seq += 1
                    tracked = _Tracked(
                        table_id=tid,
                        entry=entry,
                        installed_at=now,
                        last_active=now,
                        last_packets=entry.counters.packets,
                        next_deadline=_INF,
                        seq=self._seq,
                    )
                    tracked_map[entry_id] = tracked
                    self._schedule(entry_id, tracked)
                    continue
                tracked.table_id = tid
                if tracked.entry is not entry:
                    tracked.entry = entry
                    if entry.counters.packets < tracked.last_packets:
                        # The live object carries reset counters; rebase
                        # the idle baseline without mistaking the drop
                        # for activity (activity only *increases* counts).
                        tracked.last_packets = entry.counters.packets
                    # The replacement may carry different timeouts.
                    self._schedule(entry_id, tracked)
            for entry_id, tracked in list(tracked_map.items()):
                if tracked.table_id == tid and entry_id not in seen:
                    # Removed out from under us (or its timeouts were
                    # stripped): forget it, never delete by stale match.
                    del tracked_map[entry_id]
        vanished = [
            entry_id
            for entry_id, tracked in tracked_map.items()
            if tracked.table_id not in present
        ]
        for entry_id in vanished:
            del tracked_map[entry_id]
        for tid in list(tokens):
            if tid not in present:
                del tokens[tid]

    # -- the sweep ------------------------------------------------------------

    def tick(self, now: float) -> list[tuple[int, FlowEntry, str]]:
        """Advance to ``now``; expire and remove due entries."""
        if now < self._now:
            raise ValueError("the clock cannot move backwards")
        sync = getattr(self.switch, "sync_flow_stats", None)
        if sync is not None:
            sync()  # sharded engine: judge idleness on cross-shard totals
        self.observe(now)
        self._now = now
        # Activity pass: counter progress since the last tick proves
        # activity, credited BEFORE the expiry pops — a flow active this
        # sweep can only expire hard, never idle. Credited *now*, at the
        # tick that observes it: idleness is measured from the sweep that
        # last saw traffic, not from whenever a deadline pop looks back.
        for entry_id, tracked in self._tracked.items():
            entry = tracked.entry
            if not entry.idle_timeout:
                continue
            packets = entry.counters.packets
            if packets > tracked.last_packets:
                tracked.last_packets = packets
                tracked.last_active = now
                self._schedule(entry_id, tracked)
            elif packets < tracked.last_packets:
                tracked.last_packets = packets  # reset, not activity
        # Pop the due prefix; stale nodes (their flow's deadline moved or
        # the flow is gone) are discarded here, lazily.
        heap = self._heap
        due: list[_Tracked] = []
        due_ids: list[int] = []
        while heap and heap[0][0] <= now:
            deadline, _seq, entry_id = heapq.heappop(heap)
            tracked = self._tracked.get(entry_id)
            if tracked is None or deadline != tracked.next_deadline:
                continue
            due.append(tracked)
            due_ids.append(entry_id)
        # Report in tracking order — the heap's deadline order is an
        # implementation detail, not an observable.
        order = sorted(range(len(due)), key=lambda i: due[i].seq)
        expired: list[tuple[int, FlowEntry, str]] = []
        for i in order:
            tracked = due[i]
            entry = tracked.entry
            # Hard before idle: when both are due the same sweep, the
            # lifetime bound outranks idleness (OpenFlow 1.3 §5.5).
            if (
                entry.hard_timeout
                and now - tracked.installed_at >= entry.hard_timeout
            ):
                reason = "hard"
            elif (
                entry.idle_timeout
                and now - tracked.last_active >= entry.idle_timeout
            ):
                reason = "idle"
            else:
                # Defensive: not due after all. Re-arm unconditionally —
                # the popped node is gone, so a skipped push here would
                # leave the flow unscheduled forever.
                deadline = self._deadline_of(tracked)
                tracked.next_deadline = deadline
                if deadline != _INF:
                    heapq.heappush(heap, (deadline, tracked.seq, due_ids[i]))
                continue
            del self._tracked[due_ids[i]]
            self.switch.apply_flow_mod(
                FlowMod(
                    FlowModCommand.DELETE,
                    tracked.table_id,
                    entry.match,
                    priority=entry.priority,
                    strict=True,  # expire exactly this rule, nothing else
                )
            )
            if reason == "idle":
                self.expired_idle += 1
            else:
                self.expired_hard += 1
            expired.append((tracked.table_id, entry, reason))
            if self.on_expired is not None:
                self.on_expired(tracked.table_id, entry, reason)
        return expired

    @property
    def tracked_count(self) -> int:
        return len(self._tracked)
