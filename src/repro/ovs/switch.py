"""The assembled Open vSwitch model: EMC → megaflow → vswitchd → controller.

Processing a packet walks down the Fig. 2 hierarchy:

1. parse + flow-key extraction (paid by every packet);
2. microflow cache probe — hit: replay the referenced megaflow's actions;
3. megaflow cache lookup (tuple space search) — hit: replay + EMC insert;
4. upcall to vswitchd — full classification, megaflow computation and
   installation, EMC insert;
5. table miss with controller policy — packet-in to the controller.

Every step charges the cost model through a :class:`Meter`; per-level hit
counters feed Fig. 14, the meter's cache stats feed Fig. 15.

Updates: any flow-mod invalidates both caches entirely — "OVS adopts the
brute-force strategy to invalidate the entire cache after essentially all
changes" (Section 2.3) — and cache contents are then re-learned reactively
through upcalls, exactly the behavior Fig. 18 punishes.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.openflow.flow_table import TableMissPolicy
from repro.openflow.messages import FlowMod, FlowModCommand, PacketIn
from repro.openflow.pipeline import Pipeline, Verdict
from repro.openflow.stats import BurstStats
from repro.ovs.flowkey import emc_key, extract_key
from repro.ovs.megaflow import MegaflowCache, MegaflowEntry
from repro.ovs.microflow import MicroflowCache
from repro.ovs.vswitchd import Vswitchd
from repro.packet import parser as pp
from repro.packet.packet import Packet
from repro.simcpu.costs import CostBook, DEFAULT_COSTS
from repro.simcpu.recorder import Meter, NULL_METER


class OvsStats:
    """Per-level hit counters (the Fig. 14 series)."""

    __slots__ = ("packets", "microflow_hits", "megaflow_hits", "vswitchd_hits", "controller_hits")

    def __init__(self) -> None:
        self.packets = 0
        self.microflow_hits = 0
        self.megaflow_hits = 0
        self.vswitchd_hits = 0
        self.controller_hits = 0

    def rates(self) -> dict[str, float]:
        n = max(self.packets, 1)
        return {
            "microflow": self.microflow_hits / n,
            "megaflow": self.megaflow_hits / n,
            "vswitchd": self.vswitchd_hits / n,
            "controller": self.controller_hits / n,
        }

    def reset(self) -> None:
        self.packets = 0
        self.microflow_hits = 0
        self.megaflow_hits = 0
        self.vswitchd_hits = 0
        self.controller_hits = 0


class OvsSwitch:
    """The four-level indirect datapath of Section 2.2."""

    def __init__(
        self,
        pipeline: Pipeline,
        emc_capacity: int = 8192,
        megaflow_capacity: int = 65536,
        costs: CostBook = DEFAULT_COSTS,
        packet_in_handler: "Callable[[PacketIn], None] | None" = None,
        invalidation: str = "full",
    ):
        if invalidation not in ("full", "revalidate"):
            raise ValueError("invalidation must be 'full' or 'revalidate'")
        self.pipeline = pipeline
        self.emc = MicroflowCache(emc_capacity)
        self.megaflow = MegaflowCache(megaflow_capacity)
        self.vswitchd = Vswitchd(pipeline)
        self.costs = costs
        self.stats = OvsStats()
        self.burst_stats = BurstStats()
        self.packet_in_handler = packet_in_handler
        self.flow_mods_applied = 0
        #: "full" is the paper's documented behavior ("the brute-force
        #: strategy to invalidate the entire cache after essentially all
        #: changes"); "revalidate" only kills megaflows overlapping the
        #: changed rule, modeling a smarter revalidator.
        self.invalidation = invalidation

    # -- datapath ------------------------------------------------------------

    def process(self, pkt: Packet, meter: Meter = NULL_METER) -> Verdict:
        """Send one packet down the cache hierarchy."""
        costs = self.costs
        self.stats.packets += 1
        meter.charge(costs.pkt_in + costs.ovs_batch_overhead + costs.ovs_key_extract)

        view = pp.parse(pkt)
        key = extract_key(view)
        ekey = emc_key(view, key)

        meter.charge(costs.ovs_emc_probe)
        slot = self.emc.slot_of(ekey)
        meter.touch(("emc", slot, 0))
        meter.touch(("emc", slot, 1))
        entry = self.emc.lookup(ekey)
        if entry is not None:
            self.stats.microflow_hits += 1
            meter.touch(("mf_act", entry.entry_id))
            return self._finish(view, entry, meter)

        entry, probed = self.megaflow.lookup(key)
        meter.charge(costs.ovs_megaflow_per_subtable * max(probed, 1))
        # Each probed subtable hashes the masked key into its own bucket
        # array: a key-dependent line per subtable.
        khash = hash(ekey)
        for i in range(probed):
            meter.touch(("mft", i, khash & 0xFFF))
        if entry is not None:
            self.stats.megaflow_hits += 1
            meter.charge(costs.ovs_megaflow_hit_extra + costs.ovs_emc_install)
            meter.touch(("mf_act", entry.entry_id))
            meter.touch(("mf_stat", entry.entry_id))  # per-flow stats update
            self.emc.insert(ekey, entry)
            return self._finish(view, entry, meter)

        # Upcall to vswitchd — hand over the parse + key this function
        # already paid for (re-parsing here doubled the profiled
        # wall-clock cost of every miss during a reactive reinstall).
        self.stats.vswitchd_hits += 1
        result = self.vswitchd.upcall(pkt, view=view, key=key)
        meter.charge(costs.ovs_upcall)
        meter.charge(costs.ovs_vswitchd_per_entry * result.subtables_probed)
        # Staged-lookup machinery: roughly logarithmic work per table size.
        for table in self.pipeline.tables:
            meter.charge(8.0 * math.log2(len(table) + 2))
        # Flow-dependent translation state (xlate context, megaflow
        # allocation, stats rows): a fresh working set per distinct flow —
        # the out-of-cache references Fig. 15 attributes to the slow path.
        for j in range(self.costs.ovs_upcall_touch_lines):
            meter.touch(("vsw", khash % 65536, j))
        if result.megaflow is not None:
            meter.charge(costs.ovs_megaflow_install + costs.ovs_emc_install)
            self.megaflow.insert(result.megaflow)
            self.emc.insert(ekey, result.megaflow)
        verdict = result.verdict
        if verdict.to_controller:
            self.stats.controller_hits += 1
            if self.packet_in_handler is not None:
                table_id = verdict.path[-1][0] if verdict.path else 0
                self.packet_in_handler(PacketIn(pkt=pkt, table_id=table_id))
        if verdict.forwarded:
            meter.charge(costs.pkt_out)
        return verdict

    def process_burst(
        self, pkts, meter: Meter = NULL_METER
    ) -> "list[Verdict]":
        """Send one IO burst down the cache hierarchy.

        OVS's "extensive batching" (Section 4.2): the per-burst framework
        cost is charged once and each packet credits back the
        reference-burst share baked into the per-packet IO atoms, so a
        burst of ``costs.reference_burst`` packets costs exactly what that
        many scalar :meth:`process` calls cost. Functionally identical to
        scalar processing — caches warm and upcalls fire in packet order.
        """
        if not pkts:
            return []
        costs = self.costs
        begin = getattr(meter, "begin_packet", None)
        end = getattr(meter, "end_packet", None)
        cycles_before = getattr(meter, "total_cycles", 0.0)
        meter.charge(costs.io_burst_cost)
        share = costs.io_burst_share
        verdicts = []
        for pkt in pkts:
            if begin is not None:
                begin()
            meter.charge(-share)
            verdicts.append(self.process(pkt, meter))
            if end is not None:
                end()
        self.burst_stats.record(
            len(pkts), getattr(meter, "total_cycles", 0.0) - cycles_before
        )
        return verdicts

    def _finish(self, view: pp.ParsedPacket, entry: MegaflowEntry, meter: Meter) -> Verdict:
        """Replay a cached megaflow's program on this packet.

        Steps mirror the traversed flow entries: each credits its rule's
        counters, runs its meter (a fired band stops the replay exactly
        where the slow path would have dropped), then applies its actions.
        """
        verdict = Verdict()
        pkt_len = len(view.pkt)
        for flow_meter, actions, rule in entry.program:
            if rule is not None:
                rule.counters.record(pkt_len)
            if flow_meter is not None and not flow_meter.allow():
                verdict.dropped = True
                break
            for action in actions:
                action.apply(view, verdict)
                if verdict.reparse_needed:
                    # VLAN push/pop invalidates the miniflow: re-extract.
                    meter.charge(self.costs.ovs_key_extract)
                    new_view = pp.parse(view.pkt)
                    view.proto, view.l3, view.l4 = (
                        new_view.proto, new_view.l3, new_view.l4,
                    )
                    view.l4_proto = new_view.l4_proto
                    verdict.reparse_needed = False
            if verdict.dropped:
                break
        if entry.dropped:
            verdict.dropped = True
        meter.charge(
            self.costs.action_set
            + self.costs.ovs_per_action * max(0, len(entry.actions) - 1)
        )
        if verdict.to_controller and self.packet_in_handler is not None:
            # An explicit controller action replayed from the cache still
            # delivers a packet-in.
            self.packet_in_handler(PacketIn(pkt=view.pkt, table_id=0, reason="action"))
        if verdict.forwarded:
            meter.charge(self.costs.pkt_out)
        return verdict

    # -- control plane ------------------------------------------------------------

    def apply_flow_mod(self, mod: FlowMod) -> None:
        """Apply a flow-mod, then invalidate the caches (see
        ``invalidation``)."""
        self._mutate(mod)
        if self.invalidation == "revalidate":
            # Dead megaflows are dropped lazily by EMC lookups.
            self.megaflow.invalidate_overlapping(mod.match)
        else:
            # Brute force is one generation bump (O(1), not a cache
            # walk); both caches defer their container clears to the
            # next packet-path touch.
            self.megaflow.invalidate()
            self.emc.invalidate()

    def apply_flow_mods(self, mods) -> None:
        """Apply a batch of flow-mods with one collapse for the batch.

        The reactive install path replays every rule the controller knows
        through this entry point; per-mod invalidation made that sweep
        O(flows) collapses and kept the 1e6 leg from ever saturating.
        Since any single mod already kills the whole cache under "full"
        invalidation, N mods need exactly one generation bump.
        """
        mods = list(mods)
        for mod in mods:
            self._mutate(mod)
        if self.invalidation == "revalidate":
            for mod in mods:
                self.megaflow.invalidate_overlapping(mod.match)
        elif mods:
            self.megaflow.invalidate()
            self.emc.invalidate()

    def _mutate(self, mod: FlowMod) -> None:
        table = self.pipeline.get_or_create(mod.table_id)
        if mod.command is FlowModCommand.DELETE:
            # Strict deletes pin the priority (0 included); non-strict
            # deletes ignore it — same semantics as the ESWITCH side.
            table.remove(mod.match, mod.priority if mod.strict else None)
        else:
            table.add(mod.to_entry())
        self.flow_mods_applied += 1

    def set_miss_policy(self, table_id: int, policy: TableMissPolicy) -> None:
        self.pipeline.table(table_id).miss_policy = policy
        self.megaflow.invalidate()
        self.emc.invalidate()

    def __repr__(self) -> str:
        return (
            f"OvsSwitch(emc={len(self.emc)}, megaflows={len(self.megaflow)}, "
            f"upcalls={self.vswitchd.upcalls})"
        )
