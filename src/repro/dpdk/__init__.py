"""Simulated DPDK substrate.

The paper's prototype sits on the Intel DataPlane Development Kit: NIC
polling drivers, batch IO, and prefab flow-table building blocks. This
package reimplements the pieces ESWITCH uses:

* :mod:`repro.dpdk.lpm` — the ``rte_lpm`` DIR-24-8 longest-prefix-match
  structure backing the LPM table template;
* :mod:`repro.dpdk.hash` — a collision-free hash backing the compound hash
  template ("more memory and more time to build … fast constant time
  lookups", Section 3.1);
* :mod:`repro.dpdk.ports` — simulated ports/rings with counters;
* :mod:`repro.dpdk.l2fwd` — the platform reference benchmark (the 15.7 Mpps
  port-forward ceiling of Section 4.2).
"""

from repro.dpdk.lpm import Dir24_8Lpm
from repro.dpdk.hash import CollisionFreeHash
from repro.dpdk.ports import Port, PortSet
from repro.dpdk.l2fwd import L2FWD_CYCLES_PER_PKT, l2fwd_rate_pps

__all__ = [
    "Dir24_8Lpm",
    "CollisionFreeHash",
    "Port",
    "PortSet",
    "L2FWD_CYCLES_PER_PKT",
    "l2fwd_rate_pps",
]
