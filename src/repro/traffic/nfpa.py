"""The measurement harness (the paper's NFPA + pktgen stand-in).

Replays a flow set through a switch under the cycle/cache model and
reports the quantities the evaluation figures plot: packet rate,
cycles/packet (latency), LLC misses/packet, and the switch's own
hierarchy statistics.

Switches are duck-typed: anything with ``process(pkt, meter) -> Verdict``
works (ESwitch, OvsSwitch, or a bare pipeline wrapped in
:class:`DirectSwitch`); burst sweeps additionally need
``process_burst(pkts, meter) -> list[Verdict]``, which all three provide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.openflow.pipeline import Pipeline, Verdict
from repro.openflow.stats import BurstStats, collect_burst_stats
from repro.packet.packet import Packet
from repro.simcpu.costs import CostBook, DEFAULT_COSTS
from repro.simcpu.platform import Platform, XEON_E5_2620
from repro.simcpu.recorder import CycleMeter, Meter, NULL_METER
from repro.traffic.flows import FlowSet


def auto_params(n_flows: int) -> tuple[int, int]:
    """(n_packets, warmup) so that steady state is actually measured.

    Warm-up must cover at least one full round-robin cycle of the flow set
    (so flow caches and CPU caches reach steady state) and the measured
    window a couple more — until the flow set is too large to ever revisit
    within a realistic budget, which *is* the thrashing steady state.
    """
    warmup = min(max(2_000, n_flows), 40_000)
    n_packets = min(max(12_000, 2 * n_flows), 60_000)
    return n_packets, warmup


class DirectSwitch:
    """The reference interpreter wrapped as a switch (a direct datapath)."""

    def __init__(self, pipeline: Pipeline, costs: CostBook = DEFAULT_COSTS):
        self.pipeline = pipeline
        self.costs = costs
        self.burst_stats = BurstStats()

    def process(self, pkt: Packet, meter: Meter = NULL_METER) -> Verdict:
        """Interpret one packet, charging the same IO atoms the compiled
        datapaths charge (``pkt_in`` on receive, ``pkt_out`` on forward):
        scalar and burst accounting must tell one consistent story."""
        costs = self.costs
        meter.charge(costs.pkt_in)
        verdict = self.pipeline.process(pkt)
        if verdict.forwarded:
            meter.charge(costs.pkt_out)
        return verdict

    def process_burst(
        self, pkts, meter: Meter = NULL_METER
    ) -> list[Verdict]:
        """Interpret one IO burst; same amortization contract as the fast
        switches: the per-burst framework cost is charged once and each
        packet pays the scalar cost minus the reference-burst share
        already baked into ``pkt_in`` — a burst of ``reference_burst``
        packets costs exactly that many scalar :meth:`process` calls,
        and every per-packet window stays non-negative."""
        if not pkts:
            return []
        costs = self.costs
        begin = getattr(meter, "begin_packet", None)
        end = getattr(meter, "end_packet", None)
        cycles_before = getattr(meter, "total_cycles", 0.0)
        meter.charge(costs.io_burst_cost)
        per_pkt = costs.pkt_in - costs.io_burst_share
        verdicts = []
        for pkt in pkts:
            if begin is not None:
                begin()
            meter.charge(per_pkt)
            verdict = self.pipeline.process(pkt)
            if verdict.forwarded:
                meter.charge(costs.pkt_out)
            verdicts.append(verdict)
            if end is not None:
                end()
        self.burst_stats.record(
            len(pkts), getattr(meter, "total_cycles", 0.0) - cycles_before
        )
        return verdicts


@dataclass
class Measurement:
    """One measurement point."""

    pps: float
    cycles_per_packet: float
    llc_misses_per_packet: float
    packets: int
    forwarded: int
    dropped: int
    to_controller: int
    extra: dict = field(default_factory=dict)

    @property
    def mpps(self) -> float:
        return self.pps / 1e6

    def __repr__(self) -> str:
        return (
            f"Measurement({self.mpps:.2f} Mpps, {self.cycles_per_packet:.0f} cyc/pkt, "
            f"{self.llc_misses_per_packet:.2f} LLC miss/pkt)"
        )


def measure(
    switch,
    flows: FlowSet,
    n_packets: int = 20_000,
    warmup: int = 2_000,
    platform: Platform = XEON_E5_2620,
    update_hook: "Callable[[int, CycleMeter], None] | None" = None,
    batch_size: "int | None" = None,
    costs: CostBook = DEFAULT_COSTS,
) -> Measurement:
    """Replay ``flows`` round-robin through ``switch`` and measure.

    ``warmup`` packets run first with costs discarded (caches and flow
    caches warm up); the remaining ``n_packets`` are measured.
    ``update_hook(i, meter)``, if given, fires before each measured packet
    — the update-intensity experiments (Fig. 18) inject flow-mods there.

    ``batch_size`` selects the IO burst the datapath polls in: packets are
    driven through the switch's ``process_burst`` in chunks of that size,
    re-amortizing the per-burst framework cost that the per-packet IO atoms
    bake in at the DPDK-typical ``costs.reference_burst`` (None = scalar
    ``process`` calls, which are calibrated to the reference burst).
    """
    meter = CycleMeter(platform)
    if batch_size is not None:
        if batch_size < 1:
            raise ValueError("batch size must be positive")
        if not hasattr(switch, "process_burst"):
            raise TypeError(
                f"batch_size={batch_size} needs a switch with process_burst; "
                f"{type(switch).__name__} only has scalar process()"
            )
    n = len(flows)
    if batch_size is None:
        for i in range(warmup):
            meter.begin_packet()
            switch.process(flows[i % n].copy(), meter)
            meter.end_packet()
    else:
        for start in range(0, warmup, batch_size):
            burst = [
                flows[i % n].copy()
                for i in range(start, min(start + batch_size, warmup))
            ]
            switch.process_burst(burst, meter)
    # Keep cache state, discard the warm-up counters.
    meter.total_cycles = 0.0
    meter.packets = 0
    meter.cache.stats.reset()
    burst_stats = collect_burst_stats(switch)
    burst_base = burst_stats.snapshot() if burst_stats is not None else None

    # Tallies stream as verdicts arrive: a 100K+-packet sweep holds one
    # burst's worth of Verdict objects at a time, not the whole replay.
    forwarded = dropped = to_controller = 0

    def tally(verdict: Verdict) -> None:
        nonlocal forwarded, dropped, to_controller
        if verdict.forwarded:
            forwarded += 1
        elif verdict.to_controller:
            to_controller += 1
        else:
            dropped += 1

    if batch_size is None:
        for i in range(n_packets):
            meter.begin_packet()
            # The hook runs inside the packet's accounting window so any
            # cycles it charges (e.g. update work sharing the core) are not
            # lost.
            if update_hook is not None:
                update_hook(i, meter)
            tally(switch.process(flows[(warmup + i) % n].copy(), meter))
            meter.end_packet()
    else:
        for start in range(0, n_packets, batch_size):
            stop = min(start + batch_size, n_packets)
            if update_hook is not None:
                # Control-plane work lands at the burst boundary — updates
                # can't preempt the datapath mid-burst. Charges ride into
                # the burst's first packet window.
                for i in range(start, stop):
                    update_hook(i, meter)
            burst = [flows[(warmup + i) % n].copy() for i in range(start, stop)]
            for verdict in switch.process_burst(burst, meter):
                tally(verdict)

    extra: dict = {}
    if burst_stats is not None and burst_base is not None:
        now = burst_stats.snapshot()
        bursts = now["bursts"] - burst_base["bursts"]
        if bursts:
            burst_pkts = now["packets"] - burst_base["packets"]
            extra["burst"] = {
                "bursts": bursts,
                "mean_burst_size": burst_pkts / bursts,
                "cycles_per_burst": (now["cycles"] - burst_base["cycles"]) / bursts,
            }
    return Measurement(
        pps=meter.mean_pps(),
        cycles_per_packet=meter.mean_cycles_per_packet,
        llc_misses_per_packet=meter.llc_misses_per_packet(),
        packets=n_packets,
        forwarded=forwarded,
        dropped=dropped,
        to_controller=to_controller,
        extra=extra,
    )


def measure_multicore(
    make_switch: Callable[[], object],
    flows: FlowSet,
    cores: int,
    n_packets: int = 8_000,
    warmup: int = 1_000,
    platform: Platform = XEON_E5_2620,
    coherence_cycles_per_core: float = 0.0,
    shared_switch: bool = False,
    costs: CostBook = DEFAULT_COSTS,
) -> float:
    """Aggregate packet rate with RSS-style flow sharding across cores.

    Each core gets its own cycle meter (private caches). ``shared_switch``
    models OVS's shared flow caches: one switch instance serves all cores
    and every packet pays a coherence penalty per *additional* core —
    the fine-grained locking of Section 2.3. ESWITCH shares only read-only
    compiled code, so it runs one switch per core with a negligible
    penalty.

    Returns the aggregate pps (sum over cores), NIC-capped.
    """
    if cores < 1:
        raise ValueError("need at least one core")
    shards: list[list] = [[] for _ in range(cores)]
    for i, pkt in enumerate(flows):
        shards[i % cores].append(pkt)
    shards = [s for s in shards if s]
    active = len(shards)
    penalty = coherence_cycles_per_core * (cores - 1)
    # Warm-up must cover at least one full pass of every shard so shared
    # caches reach their true steady state before measurement.
    warmup = max(warmup, max(len(s) for s in shards) + 256)

    shared = make_switch() if shared_switch else None
    switches = [shared if shared_switch else make_switch() for _ in range(active)]
    meters = [CycleMeter(platform) for _ in range(active)]

    # Cores run concurrently: interleave their packet streams so shared
    # state (the OVS flow caches) sees the true mixed working set instead
    # of one core's shard at a time.
    for phase, count in (("warmup", warmup), ("measure", n_packets)):
        if phase == "measure":
            for meter in meters:
                meter.total_cycles = 0.0
                meter.packets = 0
        for i in range(count):
            for core in range(active):
                meter = meters[core]
                shard = shards[core]
                offset = i if phase == "warmup" else warmup + i
                meter.begin_packet()
                meter.charge(penalty)
                switches[core].process(shard[offset % len(shard)].copy(), meter)
                meter.end_packet()

    total_pps = sum(
        platform.freq_hz / meter.mean_cycles_per_packet for meter in meters
    )
    if platform.nic_pps_limit is not None:
        total_pps = min(total_pps, platform.nic_pps_limit)
    return total_pps
