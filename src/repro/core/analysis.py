"""Flow table analysis: pick the most efficient applicable table template.

Fig. 4's template lattice, transcribed:

=============  ===========================================  ===============
template       prerequisite                                  fallback
=============  ===========================================  ===============
direct code    #flows <= CONST (default 4, tuned in Fig. 9)  compound hash
compound hash  global mask (same mask per field in every
               entry; exact match after masking)             LPM
LPM            single prefix-masked field, priorities
               consistent with prefix lengths                linked list
linked list    none (tuple space search)                     —
=============  ===========================================  ===============

``select_template`` walks the chain top-down and returns the first template
whose prerequisite holds — "ESWITCH always attempts to compile into the
most efficient table template available" (Section 3.2).

A final catch-all entry (empty match, strictly lowest priority) is allowed
by every template: it compiles into the table's miss arm.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.openflow.fields import field_by_name
from repro.openflow.flow_entry import FlowEntry


class TemplateKind(enum.Enum):
    DIRECT = "direct"
    HASH = "hash"
    LPM = "lpm"
    LINKED_LIST = "linked_list"
    #: optional extension (Section 3.1: "Further table templates, like
    #: range search for port matches, can easily be added in the future").
    RANGE = "range"


#: Fields the DIR-24-8 backed LPM template supports (32-bit addresses).
LPM_FIELDS = frozenset({"ipv4_src", "ipv4_dst", "arp_spa", "arp_tpa"})


@dataclass(frozen=True)
class CompileConfig:
    """Knobs of the code-generation process.

    Attributes:
        direct_threshold: "The maximum number of flow entries under which a
            table is directly compiled" — the paper fixes 4 after the
            Fig. 9 calibration.
        decompose: rewrite linked-list-bound tables via flow table
            decomposition before template selection (Section 3.2 presents
            it as an optional feature).
        keys_in_code: patch flow keys into the instruction stream (the
            paper's choice, Section 3.3); the ablation toggles this to
            model indirect key loads instead.
        enable_range: opt into the range-search table template for port
            matches (the paper's suggested future extension); off by
            default to keep the shipped Fig. 4 template set.
        fuse: link the compiled tables into one whole-pipeline code
            object (:mod:`repro.core.fuse`); off forces every packet
            through the per-table trampoline dispatch.
        force_linked_list: pin every table to the linked-list universal
            template (and implies no decomposition benefit): the
            degenerate bottom of the Fig. 4 lattice. Semantically every
            template must agree with it, which is exactly what the
            differential fuzzer (:mod:`repro.fuzz`) uses it for.
        compile_budget: maximum table compilations (codegen + exec) one
            flow-mod batch may spend on its critical path; None =
            unbounded. A batch that blows the budget does not fail —
            further rebuilds are deferred to the side-by-side path
            (Section 3.4's "constructed side by side with the running
            datapath"), the old compiled tables serving until the next
            packet flushes the rebuild. This bounds control-plane
            latency under update storms without ever rejecting a mod.
        source_budget: maximum generated source size (characters) one
            table may occupy. The direct-code template patches every key
            into the instruction stream, so its source grows O(entries);
            past the budget ``compile_direct`` emits the *data-driven*
            variant instead — same guards and matchers, same cost atoms,
            bit-identical cycles, but the keys live in a closure array
            rather than source text, so ``compile()`` stays bounded at
            any table size. None = unbounded (the pre-budget behavior).
        fuse_source_budget: maximum characters of table bodies the fused
            driver may textually inline, cumulatively. Tables past the
            budget are linked by closure-bound call (exactly how linked
            lists always link) instead of being inlined — the driver
            stays one bounded ``compile()`` even when individual tables
            are huge. None = unbounded.
    """

    direct_threshold: int = 4
    decompose: bool = True
    keys_in_code: bool = True
    enable_range: bool = False
    fuse: bool = True
    force_linked_list: bool = False
    compile_budget: "int | None" = None
    source_budget: "int | None" = 1 << 16
    fuse_source_budget: "int | None" = 1 << 20

    def with_(self, **kwargs: object) -> "CompileConfig":
        return replace(self, **kwargs)


DEFAULT_CONFIG = CompileConfig()


def split_catch_all(
    entries: Sequence[FlowEntry],
) -> tuple[list[FlowEntry], "FlowEntry | None"]:
    """Separate the optional final catch-all from the real rules.

    Only a *strictly lowest-priority* empty match acts as a catch-all; any
    other empty match shadows lower-priority rules and must stay in place.
    Entries are expected in decreasing priority order (FlowTable order).
    """
    if entries and entries[-1].match.is_catch_all:
        rest = list(entries[:-1])
        if all(not e.match.is_catch_all for e in rest):
            return rest, entries[-1]
    return list(entries), None


def hash_applicable(entries: Sequence[FlowEntry]) -> bool:
    """Global-mask prerequisite of the compound hash template."""
    rules, _catch_all = split_catch_all(entries)
    if not rules:
        return False
    first = rules[0].match
    fields = first.fields
    if not fields:
        return False
    masks = {name: first.mask_of(name) for name in fields}
    seen_keys: dict[tuple, int] = {}
    for entry in rules:
        match = entry.match
        if match.fields != fields:
            return False
        key = []
        for name in fields:
            if match.mask_of(name) != masks[name]:
                return False
            key.append(match.value_of(name))
        tkey = tuple(key)
        # Duplicate masked keys are allowed only as shadowed (dead) rules;
        # the hash keeps the highest-priority one, which is semantically
        # equivalent because same-mask duplicates fully overlap.
        seen_keys.setdefault(tkey, entry.priority)
    return True


def lpm_applicable(entries: Sequence[FlowEntry]) -> bool:
    """Prefix-mask + priority-consistency prerequisite of the LPM template."""
    rules, _catch_all = split_catch_all(entries)
    if not rules:
        return False
    fields = rules[0].match.fields
    if len(fields) != 1 or fields[0] not in LPM_FIELDS:
        return False
    name = fields[0]
    by_prefix: dict[tuple[int, int], FlowEntry] = {}
    for entry in rules:
        match = entry.match
        if match.fields != (name,) or not match.is_prefix(name):
            return False
        depth = match.prefix_len(name)
        if depth == 0:
            return False  # covered by split_catch_all; a /0 rule here shadows
        key = (match.value_of(name), depth)  # type: ignore[arg-type]
        if key in by_prefix:
            return False  # duplicate prefix with different priority
        by_prefix[key] = entry
    # Priority consistency: "whenever rules overlap the more specific one
    # has higher priority". Overlapping prefixes nest, so walking each
    # rule's ancestors suffices (O(32 n), not O(n^2)).
    fdef = field_by_name(name)
    width = fdef.width
    for (value, depth), entry in by_prefix.items():
        for shorter in range(depth - 1, 0, -1):
            mask = ((1 << shorter) - 1) << (width - shorter)
            parent = by_prefix.get((value & mask, shorter))
            if parent is not None and parent.priority >= entry.priority:
                return False
    return True


#: 16-bit port fields the range template understands.
RANGE_FIELDS = frozenset({"tcp_src", "tcp_dst", "udp_src", "udp_dst"})


def port_map(
    entries: Sequence[FlowEntry],
) -> "tuple[str, dict[int, FlowEntry]] | None":
    """``(field, {port: winning entry})`` for a single-port-field table.

    Returns None unless every non-catch-all rule is an exact match on the
    same port field. Ports claimed by several rules keep the first
    (highest-priority) one — the entry the reference interpreter would
    match, so compiled attribution agrees with it.
    """
    rules, _catch_all = split_catch_all(entries)
    if not rules:
        return None
    name = rules[0].match.fields
    if len(name) != 1 or name[0] not in RANGE_FIELDS:
        return None
    field = name[0]
    by_port: dict[int, FlowEntry] = {}
    for entry in rules:
        if entry.match.fields != (field,) or not entry.match.is_exact(field):
            return None
        value = entry.match.value_of(field)
        assert value is not None
        by_port.setdefault(value, entry)  # first (highest-priority) wins
    return field, by_port


def port_runs(entries: Sequence[FlowEntry]) -> "list[tuple[int, int, FlowEntry]] | None":
    """Coalesce a single-port-field table into ``(lo, hi, entry)`` runs.

    Runs merge consecutive port values whose entries share identical
    instructions (the range template maps one interval to one *behavior*;
    per-port entry identity is preserved separately, see
    :func:`port_map` and ``compile_range``). ``entry`` is the run's
    first port's entry. Returns None when :func:`port_map` does.
    """
    mapped = port_map(entries)
    if mapped is None:
        return None
    _field, by_port = mapped
    runs: list[tuple[int, int, FlowEntry]] = []
    for port in sorted(by_port):
        entry = by_port[port]
        if runs and runs[-1][1] == port - 1 and runs[-1][2].instructions == entry.instructions:
            runs[-1] = (runs[-1][0], port, runs[-1][2])
        else:
            runs.append((port, port, entry))
    return runs


def range_applicable(
    entries: Sequence[FlowEntry], config: CompileConfig = DEFAULT_CONFIG
) -> bool:
    """The range template pays off when exact port rules coalesce into few
    intervals (e.g. "allow 1024–2047"): far less memory than one hash
    entry per port, one binary search per lookup."""
    if not config.enable_range:
        return False
    runs = port_runs(entries)
    if runs is None:
        return False
    rules, _ = split_catch_all(entries)
    # Require real compression, otherwise the hash template is faster.
    return len(runs) * 4 <= len(rules)


def select_template(
    entries: Sequence[FlowEntry], config: CompileConfig = DEFAULT_CONFIG
) -> TemplateKind:
    """First applicable template in the efficiency order of Fig. 4
    (plus the optional range extension, slotted before the hash when its
    compression prerequisite holds)."""
    if config.force_linked_list:
        return TemplateKind.LINKED_LIST
    if len(entries) <= config.direct_threshold:
        return TemplateKind.DIRECT
    if range_applicable(entries, config):
        return TemplateKind.RANGE
    if hash_applicable(entries):
        return TemplateKind.HASH
    if lpm_applicable(entries):
        return TemplateKind.LPM
    return TemplateKind.LINKED_LIST
